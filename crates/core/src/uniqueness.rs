//! Probing Theorem 1's *uniqueness*: every nearby payment rule is
//! manipulable.
//!
//! Theorem 1 has two halves. Strategyproofness of the VCG prices is tested
//! throughout this repository; uniqueness — "there is only one
//! strategyproof pricing scheme with this property" — is an impossibility
//! statement over all mechanisms and cannot be tested exhaustively. What
//! *can* be tested is the natural two-parameter family around the VCG rule,
//!
//! ```text
//! p^k_ij(α, β) = β · c_k  +  α · [Cost(P_{-k}(c; i, j)) − Cost(P(c; i, j))]
//! ```
//!
//! (computed from *declared* costs, like any real mechanism must be):
//! `(α, β) = (1, 1)` is Theorem 1's mechanism; `(0, 1)` is naïve
//! cost-reimbursement; `(α, 0)` pays pure margins; etc. This module
//! evaluates agent utilities under any `(α, β)` and searches for profitable
//! lies — experiment E17 shows every scaling except `(1, 1)` admits one,
//! while `(1, 1)` never does, which is exactly the shape Theorem 1
//! predicts.

use crate::vcg;
use bgpvcg_netgraph::{AsGraph, AsId, Cost, GraphError, TrafficMatrix};

/// A member of the scaled payment family: `p = β·c_k + α·margin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaledRule {
    /// Multiplier on the k-avoiding margin (VCG: 1).
    pub alpha: u64,
    /// Multiplier on the declared cost (VCG: 1).
    pub beta: u64,
}

impl ScaledRule {
    /// Theorem 1's mechanism.
    pub const VCG: ScaledRule = ScaledRule { alpha: 1, beta: 1 };
}

/// Agent `k`'s utility when declaring `declared` under the scaled rule:
/// payments computed from the declared profile, incurred costs from the
/// true one.
///
/// # Errors
///
/// Returns the graph-validation error if the graph violates the mechanism's
/// preconditions.
pub fn utility_under_rule(
    graph: &AsGraph,
    k: AsId,
    declared: Cost,
    traffic: &TrafficMatrix,
    rule: ScaledRule,
) -> Result<i128, GraphError> {
    let declared_graph = graph.with_cost(k, declared);
    let outcome = vcg::compute(&declared_graph)?;
    let true_cost = u128::from(graph.cost(k).finite().expect("finite true costs")); // lint:allow(AsGraph construction rejects infinite node costs)
    let mut utility: i128 = 0;
    let declared_raw = u128::from(declared.finite().expect("finite declarations")); // lint:allow(with_cost above would have rejected an infinite declaration)
    for (i, j, t) in traffic.flows() {
        let Some(pair) = outcome.pair(i, j) else {
            continue;
        };
        let Some(vcg_price) = pair.price_of(k) else {
            continue;
        };
        // Recover the margin from the stored VCG price: p = c_decl + margin.
        let margin = u128::from(
            vcg_price
                .checked_sub(declared)
                .expect("Theorem 1 prices satisfy p >= declared cost") // lint:allow(mathematical invariant: VCG price is declared cost plus a non-negative margin)
                .finite()
                .expect("finite margins"), // lint:allow(difference of finite costs is finite)
        );
        let scaled = u128::from(rule.beta) * declared_raw + u128::from(rule.alpha) * margin;
        utility += (scaled as i128 - true_cost as i128) * i128::from(t);
    }
    Ok(utility)
}

/// Searches declarations `0..=ceiling` for a lie that strictly beats the
/// truth for some agent under `rule`; returns the first found as
/// `(agent, lie, truthful utility, deviant utility)`.
///
/// # Errors
///
/// Returns the graph-validation error if the graph violates the mechanism's
/// preconditions.
pub fn find_profitable_lie(
    graph: &AsGraph,
    traffic: &TrafficMatrix,
    ceiling: u64,
    rule: ScaledRule,
) -> Result<Option<(AsId, Cost, i128, i128)>, GraphError> {
    for k in graph.nodes() {
        let truthful = utility_under_rule(graph, k, graph.cost(k), traffic, rule)?;
        for lie in 0..=ceiling {
            let lie = Cost::new(lie);
            if lie == graph.cost(k) {
                continue;
            }
            let deviant = utility_under_rule(graph, k, lie, traffic, rule)?;
            if deviant > truthful {
                return Ok(Some((k, lie, truthful, deviant)));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::fig1;
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform(g: &AsGraph) -> TrafficMatrix {
        TrafficMatrix::uniform(g.node_count(), 1)
    }

    #[test]
    fn vcg_rule_matches_strategy_module() {
        // (α, β) = (1, 1) must reproduce the standard utility.
        let g = fig1();
        let t = uniform(&g);
        for k in g.nodes() {
            for declared in [0u64, 2, 5, 9] {
                let via_rule =
                    utility_under_rule(&g, k, Cost::new(declared), &t, ScaledRule::VCG).unwrap();
                let via_strategy =
                    crate::strategy::evaluate(&g, k, Cost::new(declared), &t).unwrap();
                assert_eq!(via_rule, via_strategy.utility, "{k} declaring {declared}");
            }
        }
    }

    #[test]
    fn vcg_rule_has_no_profitable_lie() {
        let g = fig1();
        let t = uniform(&g);
        assert_eq!(
            find_profitable_lie(&g, &t, 15, ScaledRule::VCG).unwrap(),
            None
        );
    }

    #[test]
    fn cost_reimbursement_is_manipulable() {
        // (α, β) = (0, 1): pay declared cost only. Overstating while staying
        // on the LCP is free money.
        let g = fig1();
        let t = uniform(&g);
        let found = find_profitable_lie(&g, &t, 15, ScaledRule { alpha: 0, beta: 1 })
            .unwrap()
            .expect("naive reimbursement must be manipulable");
        assert!(found.3 > found.2);
    }

    #[test]
    fn doubled_margin_is_manipulable() {
        // (α, β) = (2, 1): understating inflates the margin.
        let g = fig1();
        let t = uniform(&g);
        assert!(
            find_profitable_lie(&g, &t, 15, ScaledRule { alpha: 2, beta: 1 })
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn doubled_cost_term_is_manipulable() {
        // (α, β) = (1, 2): overstating collects double the declaration.
        let g = fig1();
        let t = uniform(&g);
        assert!(
            find_profitable_lie(&g, &t, 15, ScaledRule { alpha: 1, beta: 2 })
                .unwrap()
                .is_some()
        );
    }

    #[test]
    fn only_vcg_survives_on_a_random_graph() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = erdos_renyi(random_costs(9, 1, 6, &mut rng), 0.45, &mut rng);
        let t = uniform(&g);
        for alpha in 0..=2u64 {
            for beta in 0..=2u64 {
                let rule = ScaledRule { alpha, beta };
                let lie = find_profitable_lie(&g, &t, 12, rule).unwrap();
                if rule == ScaledRule::VCG {
                    assert_eq!(lie, None, "VCG must be strategyproof");
                } else {
                    assert!(
                        lie.is_some(),
                        "({alpha}, {beta}) should be manipulable here"
                    );
                }
            }
        }
    }
}
