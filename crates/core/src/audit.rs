//! Cross-checking the computation itself (paper, Sect. 7).
//!
//! The paper closes on an unresolved tension: the mechanism removes the
//! incentive to lie about *costs*, "but it is these very ASs that implement
//! the distributed algorithm we have designed … what is to stop them from
//! running a different algorithm that computes prices more favorable to
//! them?" A full answer needs cryptographic or replication machinery beyond
//! the paper's scope, but a useful first line of defence is possible with
//! the data the protocol already exchanges: every quantity a node
//! advertises is a deterministic function of its neighbors' advertisements,
//! so an auditor holding the converged advertisements of a node's
//! neighborhood can **recompute** what that node should have advertised and
//! flag discrepancies.
//!
//! [`audit_node`] does exactly that: it replays one node's route selection
//! and price relaxation from its neighbors' converged advertisements and
//! compares against what the node itself advertised. An honest node always
//! passes (tested); a node that inflates a price, understates a route cost,
//! or advertises a route it did not select is reported with the specific
//! destinations that diverge. This catches *unilateral computation*
//! manipulation at convergence; collusion between adjacent ASs, or lies
//! about the private cost input itself, remain out of reach (the latter by
//! design — that is what the prices are for).

//! # Offline vs. online auditing
//!
//! [`audit_node`] / [`audit_network`] above are **offline**: they look at
//! one snapshot — the converged tables — through a route collector's eyes.
//! That vantage point has provable blind spots:
//!
//! * **Equivocation** is invisible offline. A collector (or any single
//!   neighbor) holds *one* table per AS; a node that tells different
//!   neighbors different stories presents each observer a self-consistent
//!   lie, and no per-neighborhood replay of a single table can expose the
//!   inconsistency. Only an observer comparing *per-link deliveries across
//!   neighbors* can — which is exactly what [`OnlineAuditor`] does.
//! * **Transient manipulation** that self-corrects before convergence
//!   (e.g. a replayed stale route that the adversary eventually lets
//!   catch up) leaves no converged-state residue to diff.
//!
//! [`OnlineAuditor`] closes both gaps by moving the same recompute-and-diff
//! idea onto the wire: it shadows every node with an honest
//! [`PricingBgpNode`] fed the *actual* deliveries (perturbed or not), and
//! after every engine stage compares what each node advertised on each
//! link against what its honest shadow — same inbox, same code path —
//! advertised. The expected values come from the production route
//! selection and pricing code, not a parallel implementation, so the
//! auditor cannot drift from the protocol it polices.

use crate::pricing_node::PricingBgpNode;
use bgpvcg_bgp::{
    Accusation, LocalEvent, ProtocolNode, RouteAdvertisement, RouteInfo, TopologyEvent, Update,
    WireAuditor, WireFinding,
};
use bgpvcg_netgraph::{AsGraph, AsId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// One detected divergence between what a node advertised and what the
/// algorithm, replayed from its neighborhood, says it should have
/// advertised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// The audited node.
    pub node: AsId,
    /// The destination whose advertised entry diverges.
    pub destination: AsId,
    /// What the node advertised (`None` = nothing/withdrawn).
    pub advertised: Option<RouteInfo>,
    /// What replaying the algorithm on its neighbors' advertisements
    /// yields.
    pub expected: Option<RouteInfo>,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: advertisement for {} diverges from the replayed computation",
            self.node, self.destination
        )
    }
}

/// The advertisements one AS exposes at convergence: its full table,
/// exactly as its neighbors would have last received it.
///
/// In deployment this is what a route collector (or the neighbors
/// themselves) would hand the auditor.
pub fn converged_advertisements(node: &PricingBgpNode) -> Vec<RouteAdvertisement> {
    node.full_table()
        .map(|u| u.advertisements)
        .unwrap_or_default()
}

/// Audits one node: replays route selection and price relaxation from the
/// converged advertisements of its neighbors and diffs the result against
/// the node's own advertisements. Returns all divergences (empty = passes).
///
/// The replay builds a fresh, honest [`PricingBgpNode`] for the same
/// position in the graph, feeds it the neighbors' full tables, iterates its
/// local computation to a fixpoint, and compares tables. At global
/// convergence a correct node's state is exactly this local fixpoint
/// (that is what quiescence means), so any difference is a deviation from
/// the algorithm.
///
/// # Panics
///
/// Panics if `subject` is not a node of `graph`.
pub fn audit_node(
    graph: &AsGraph,
    subject: AsId,
    subject_advertisements: &[RouteAdvertisement],
    neighbor_tables: &[(AsId, Vec<RouteAdvertisement>)],
) -> Vec<AuditFinding> {
    assert!(graph.contains_node(subject), "unknown subject {subject}");
    // Rebuild an honest node and feed it the neighborhood's converged state.
    let mut replay = PricingBgpNode::new(graph, subject);
    let _ = replay.start();
    // Iterate to a local fixpoint: with static inputs the relaxation is a
    // deterministic function, so a couple of passes settle it (each pass
    // re-ingests the same tables; decide/refresh are idempotent on stable
    // input, and price arrays need one extra pass after routes settle).
    for _ in 0..3 {
        for (neighbor, table) in neighbor_tables {
            let update = Update {
                from: *neighbor,
                sender_costs: Vec::new(),
                advertisements: table.clone(),
                id: 0,
                causes: Vec::new(),
            };
            let _ = replay.handle(&[std::sync::Arc::new(update)]);
        }
    }
    let expected = converged_advertisements(&replay);

    let mut findings = Vec::new();
    let lookup = |ads: &[RouteAdvertisement], dest: AsId| -> Option<RouteInfo> {
        ads.iter()
            .find(|ad| ad.destination == dest)
            .map(|ad| ad.info.clone())
    };
    let mut destinations: Vec<AsId> = subject_advertisements
        .iter()
        .map(|ad| ad.destination)
        .chain(expected.iter().map(|ad| ad.destination))
        .collect();
    destinations.sort_unstable();
    destinations.dedup();
    for dest in destinations {
        let advertised = lookup(subject_advertisements, dest);
        let should_be = lookup(&expected, dest);
        if advertised != should_be {
            findings.push(AuditFinding {
                node: subject,
                destination: dest,
                advertised,
                expected: should_be,
            });
        }
    }
    findings
}

/// Audits every node of a converged run against its neighborhood; returns
/// all findings across the network (empty = everyone ran the algorithm).
///
/// # Example
///
/// ```
/// use bgpvcg_core::{audit, protocol};
/// use bgpvcg_netgraph::generators::structured::fig1;
///
/// # fn main() -> Result<(), bgpvcg_netgraph::GraphError> {
/// let g = fig1();
/// let mut engine = protocol::build_sync_engine(&g)?;
/// engine.run_to_convergence();
/// let nodes = engine.into_nodes();
/// assert!(audit::audit_network(&g, &nodes).is_empty(), "honest run passes");
/// # Ok(())
/// # }
/// ```
pub fn audit_network(graph: &AsGraph, nodes: &[PricingBgpNode]) -> Vec<AuditFinding> {
    let tables: Vec<Vec<RouteAdvertisement>> = nodes.iter().map(converged_advertisements).collect();
    let mut findings = Vec::new();
    for node in nodes {
        let subject = node.id();
        let neighbor_tables: Vec<(AsId, Vec<RouteAdvertisement>)> = graph
            .neighbors(subject)
            .iter()
            .map(|&a| (a, tables[a.index()].clone()))
            .collect();
        findings.extend(audit_node(
            graph,
            subject,
            &tables[subject.index()],
            &neighbor_tables,
        ));
    }
    findings
}

/// Folds one update into a cumulative per-destination advertisement map,
/// mirroring [`RouteSelector::ingest`]'s retention semantics exactly: a
/// withdrawal removes the entry, a full advertisement replaces it, and a
/// price delta patches the retained full route — silently dropped on a
/// base-path-hash mismatch or an out-of-range index, just as a receiver
/// would drop it.
///
/// The mirror matters: the auditor's link views must equal what receivers
/// actually retain, or honest delta streams would produce false positives.
///
/// [`RouteSelector::ingest`]: bgpvcg_bgp::RouteSelector::ingest
fn fold_advertisements(map: &mut BTreeMap<AsId, RouteInfo>, update: &Update) {
    for ad in &update.advertisements {
        match &ad.info {
            RouteInfo::Withdrawn => {
                map.remove(&ad.destination);
            }
            RouteInfo::PriceDelta {
                base_path_hash,
                entries,
            } => {
                let Some(RouteInfo::Reachable { path, prices, .. }) = map.get_mut(&ad.destination)
                else {
                    continue;
                };
                if path.hash64() != *base_path_hash
                    || entries
                        .iter()
                        .any(|&(idx, _)| usize::from(idx) >= prices.len())
                {
                    continue;
                }
                for &(idx, value) in entries {
                    // lint:allow(bounds: every idx range-checked above)
                    prices[usize::from(idx)] = value;
                }
            }
            reachable => {
                map.insert(ad.destination, reachable.clone());
            }
        }
    }
}

/// The online incremental auditor: an engine-attached watchdog that
/// cross-checks every node's wire behavior against an honest shadow
/// replay, stage by stage, while the protocol runs.
///
/// # How it works
///
/// The auditor keeps, per AS:
///
/// * a **shadow** — an honest [`PricingBgpNode`] at the same graph
///   position, fed exactly the deliveries the real node receives (via
///   [`WireAuditor::on_wire`] + the engine's stage boundary signals).
///   Delta encoding is disabled on shadows so their emissions are
///   absolute values;
/// * the **expected** advertisement state — the cumulative fold of the
///   shadow's emissions: what the node *should* currently be advertising;
/// * per-link **views** — what each neighbor has cumulatively heard from
///   this node, folded with receiver-exact retention semantics.
///
/// After each stage the engine calls [`WireAuditor::end_stage`]; the
/// auditor first replays the stage's inboxes through the shadows (keeping
/// `expected` in lock-step with honest behavior), then compares every
/// (sender, destination) pair touched on the wire this stage: each
/// neighbor's view must equal the expected value (divergence), and all
/// neighbors' views must equal *each other* (equivocation — the check no
/// offline audit can make). Violations come back as [`Accusation`]s, which
/// the engine's quarantine machinery can act on.
///
/// # Why a wrapped adversary cannot shake its shadow
///
/// The [`Adversary`](bgpvcg_bgp::Adversary) model perturbs a node's wire
/// *output* only; the wrapped node ingests its inbox honestly. Its shadow
/// ingests the same inbox, so shadow and real node track each other
/// exactly and `expected` is precisely the honest output — no tolerance
/// thresholds, no drift. Receivers' shadows are fed the *perturbed* wire
/// (what was really delivered), so downstream nodes' honest reactions to
/// poisoned input are never mis-accused: the auditor flags the liar, not
/// the lied-to.
#[derive(Debug)]
pub struct OnlineAuditor {
    /// Honest replica of every node, fed the real deliveries.
    shadows: Vec<PricingBgpNode>,
    /// `expected[f]`: cumulative fold of shadow `f`'s emissions — the
    /// honest advertisement state (absent = withdrawn / never advertised).
    expected: Vec<BTreeMap<AsId, RouteInfo>>,
    /// `links[t][f]`: what neighbor `t` has cumulatively heard from `f`,
    /// per destination (pruned when the `f`–`t` link goes down).
    links: Vec<BTreeMap<AsId, BTreeMap<AsId, RouteInfo>>>,
    /// Deliveries narrated since the last stage boundary (the engine is
    /// still collecting them; receivers ingest them *next* stage).
    staging: Vec<Vec<Arc<Update>>>,
    /// Deliveries the engine's current stage is handing to receivers.
    inbox: Vec<Vec<Arc<Update>>>,
    /// (sender, destination) pairs whose wire state changed this stage —
    /// the only pairs `end_stage` needs to re-check.
    touched: BTreeSet<(AsId, AsId)>,
    /// Quarantined / crashed nodes: their shadows are parked and they are
    /// exempt from comparison until a `NodeUp`.
    down: Vec<bool>,
}

impl OnlineAuditor {
    /// Builds the auditor for `graph`, with every shadow started (origin
    /// advertisements folded into the expected state) so it can be
    /// attached to an engine before `run_to_convergence`.
    pub fn new(graph: &AsGraph) -> Self {
        let mut shadows = PricingBgpNode::from_graph(graph);
        let n = shadows.len();
        let mut expected = vec![BTreeMap::new(); n];
        for (idx, shadow) in shadows.iter_mut().enumerate() {
            shadow.set_delta_encoding(false);
            if let Some(update) = shadow.start() {
                fold_advertisements(&mut expected[idx], &update);
            }
        }
        OnlineAuditor {
            shadows,
            expected,
            links: vec![BTreeMap::new(); n],
            staging: vec![Vec::new(); n],
            inbox: vec![Vec::new(); n],
            touched: BTreeSet::new(),
            down: vec![false; n],
        }
    }
}

impl WireAuditor for OnlineAuditor {
    fn on_wire(&mut self, from: AsId, to: AsId, update: &Arc<Update>) {
        for ad in &update.advertisements {
            self.touched.insert((from, ad.destination));
        }
        let link = self.links[to.index()].entry(from).or_default();
        fold_advertisements(link, update);
        self.staging[to.index()].push(Arc::clone(update));
    }

    fn begin_stage(&mut self, _stage: u64) {
        // The engine swapped its double buffers: everything narrated since
        // the last boundary is delivered *this* stage. (`inbox` slots were
        // drained by the previous `end_stage`, so `append` just moves.)
        for (staged, active) in self.staging.iter_mut().zip(self.inbox.iter_mut()) {
            active.append(staged);
        }
    }

    fn on_topology(&mut self, event: &TopologyEvent) {
        match *event {
            TopologyEvent::NodeDown(k) => {
                // Mirror the engine's crash semantics on the shadow: full
                // state loss, then the loss of every incident link.
                let neighbors: Vec<AsId> = self.shadows[k.index()].selector().neighbors().collect();
                self.shadows[k.index()].reset();
                for a in neighbors {
                    let _ = self.shadows[k.index()].apply_event(LocalEvent::LinkDown(a));
                }
                self.staging[k.index()].clear();
                self.inbox[k.index()].clear();
                self.links[k.index()].clear();
                self.expected[k.index()].clear();
                // Seed the expected state with the post-crash table (the
                // origin route), so the full-table unicast a later NodeUp
                // triggers compares clean.
                if let Some(table) = self.shadows[k.index()].full_table() {
                    fold_advertisements(&mut self.expected[k.index()], &table);
                }
                self.down[k.index()] = true;
            }
            TopologyEvent::NodeUp(k) => {
                self.down[k.index()] = false;
            }
            // Link and cost events reach the affected nodes as local
            // views; `on_local_event` mirrors those below.
            _ => {}
        }
    }

    fn on_local_event(&mut self, node: AsId, event: &LocalEvent) {
        if self.down[node.index()] {
            return;
        }
        if let LocalEvent::LinkDown(peer) = event {
            // The receiver-side view of a dead link is gone: the engine
            // will never deliver over it again, and comparing a stale view
            // against a live expected state would be a false positive.
            self.links[node.index()].remove(peer);
        }
        if let Some(update) = self.shadows[node.index()].apply_event(*event) {
            fold_advertisements(&mut self.expected[node.index()], &update);
        }
    }

    fn end_stage(&mut self, stage: u64) -> Vec<Accusation> {
        // Phase A — advance the shadows: replay this stage's inboxes
        // through the honest replicas, in the engine's ascending node
        // order, folding their emissions into the expected state.
        let replicas = self
            .shadows
            .iter_mut()
            .zip(self.expected.iter_mut())
            .zip(self.inbox.iter_mut())
            .zip(self.down.iter());
        for (((shadow, expected), inbox), &down) in replicas {
            if inbox.is_empty() {
                continue;
            }
            let batch = std::mem::take(inbox);
            if !down {
                if let Some(update) = shadow.handle(&batch) {
                    fold_advertisements(expected, &update);
                }
            }
        }
        // Phase B — cross-check every (sender, destination) pair that
        // moved on the wire this stage. BTreeSet order groups findings by
        // sender ascending, destinations ascending within each.
        let touched = std::mem::take(&mut self.touched);
        let mut accusations: Vec<Accusation> = Vec::new();
        for (sender, dest) in touched {
            if self.down[sender.index()] {
                continue;
            }
            let expected = self.expected[sender.index()].get(&dest);
            // Every neighbor currently holding a live link view of
            // `sender` must agree with the expected value — and with each
            // other (a node cannot tell different neighbors different
            // stories, even stories that are each individually plausible).
            let mut views: Vec<Option<&RouteInfo>> = Vec::new();
            for per_receiver in &self.links {
                if let Some(link) = per_receiver.get(&sender) {
                    views.push(link.get(&dest));
                }
            }
            let divergent = views.iter().find(|view| **view != expected);
            let equivocation = views.windows(2).any(|pair| pair[0] != pair[1]);
            if divergent.is_none() && !equivocation {
                continue;
            }
            let advertised = match divergent {
                Some(view) => view.cloned(),
                None => views.first().copied().flatten().cloned(),
            };
            let finding = WireFinding {
                destination: dest,
                expected: expected.cloned(),
                advertised,
                equivocation,
            };
            match accusations.last_mut() {
                Some(last) if last.node == sender => last.findings.push(finding),
                _ => accusations.push(Accusation {
                    node: sender,
                    stage,
                    findings: vec![finding],
                }),
            }
        }
        accusations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use bgpvcg_netgraph::Cost;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn converged_nodes(g: &AsGraph) -> Vec<PricingBgpNode> {
        let mut engine = protocol::build_sync_engine(g).unwrap();
        let report = engine.run_to_convergence();
        assert!(report.converged);
        engine.into_nodes()
    }

    #[test]
    fn honest_network_passes_audit() {
        let g = fig1();
        let nodes = converged_nodes(&g);
        assert!(audit_network(&g, &nodes).is_empty());
    }

    #[test]
    fn honest_random_networks_pass_audit() {
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = erdos_renyi(random_costs(14, 0, 9, &mut rng), 0.3, &mut rng);
            let nodes = converged_nodes(&g);
            assert!(audit_network(&g, &nodes).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn inflated_price_is_detected() {
        // D doctors its advertised price array for destination Z upward —
        // the Sect. 7 manipulation: run a "different algorithm" that
        // reports prices more favorable to itself... here B inflates its
        // own advertised p^D entry to try to drag X's computed price up.
        let g = fig1();
        let nodes = converged_nodes(&g);
        let mut tampered = converged_advertisements(&nodes[Fig1::B.index()]);
        for ad in &mut tampered {
            if ad.destination == Fig1::Z {
                if let RouteInfo::Reachable { prices, .. } = &mut ad.info {
                    for p in prices.iter_mut() {
                        *p += Cost::new(50);
                    }
                }
            }
        }
        let neighbor_tables: Vec<(AsId, Vec<RouteAdvertisement>)> = g
            .neighbors(Fig1::B)
            .iter()
            .map(|&a| (a, converged_advertisements(&nodes[a.index()])))
            .collect();
        let findings = audit_node(&g, Fig1::B, &tampered, &neighbor_tables);
        assert!(
            findings.iter().any(|f| f.destination == Fig1::Z),
            "inflated price must be flagged: {findings:?}"
        );
    }

    #[test]
    fn understated_route_cost_is_detected() {
        // B advertises its route to Z at a fake lower cost (to attract
        // traffic without re-declaring its cost input).
        let g = fig1();
        let nodes = converged_nodes(&g);
        let mut tampered = converged_advertisements(&nodes[Fig1::B.index()]);
        for ad in &mut tampered {
            if ad.destination == Fig1::Z {
                if let RouteInfo::Reachable { path_cost, .. } = &mut ad.info {
                    *path_cost = Cost::ZERO;
                }
            }
        }
        let neighbor_tables: Vec<(AsId, Vec<RouteAdvertisement>)> = g
            .neighbors(Fig1::B)
            .iter()
            .map(|&a| (a, converged_advertisements(&nodes[a.index()])))
            .collect();
        let findings = audit_node(&g, Fig1::B, &tampered, &neighbor_tables);
        assert!(findings.iter().any(|f| f.destination == Fig1::Z));
    }

    #[test]
    fn online_auditor_honest_runs_are_clean() {
        // Zero false positives: honest runs, serial and parallel, on a
        // structured and several random graphs, never draw an accusation.
        let mut graphs = vec![fig1()];
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            graphs.push(erdos_renyi(random_costs(14, 1, 9, &mut rng), 0.3, &mut rng));
        }
        for (gi, g) in graphs.iter().enumerate() {
            let reference = protocol::run_sync(g).unwrap();
            for workers in [1usize, 4] {
                let mut engine = protocol::build_audited_sync_engine_parallel(g, workers).unwrap();
                let report = engine.run_to_convergence();
                assert!(report.converged, "graph {gi} workers {workers}");
                assert!(
                    engine.accusations().is_empty(),
                    "graph {gi} workers {workers}: {:?}",
                    engine.accusations()
                );
                assert!(engine.quarantined().is_empty());
                let outcome = protocol::outcome_from_nodes(&engine.into_nodes()).unwrap();
                assert_eq!(outcome, reference.outcome, "graph {gi} workers {workers}");
            }
        }
    }

    #[test]
    fn online_auditor_detects_and_quarantines_every_strategy() {
        use bgpvcg_bgp::{Adversary, Strategy, TopologyEvent};
        // Petersen is 3-connected: removing any one node leaves the graph
        // biconnected, so quarantine is always a valid recovery.
        let g = bgpvcg_netgraph::generators::structured::petersen(Cost::new(2));
        let culprit = AsId::new(4);
        // The "adversary never joined" reference: an honest convergence
        // followed by the culprit's removal.
        let reference = {
            let mut engine = protocol::build_sync_engine(&g).unwrap();
            engine.run_to_convergence();
            engine
                .try_apply_event(TopologyEvent::NodeDown(culprit))
                .expect("petersen minus a node stays biconnected");
            protocol::outcome_from_nodes(&engine.into_nodes()).unwrap()
        };
        for strategy in Strategy::ALL {
            let mut engine = protocol::build_audited_sync_engine(&g).unwrap();
            engine.set_adversary(culprit, Adversary::new(strategy, 11));
            let report = engine.run_to_convergence();
            assert!(report.converged, "{}", strategy.name());
            assert!(
                engine.accusations().iter().all(|acc| acc.node == culprit),
                "{}: only the liar is accused: {:?}",
                strategy.name(),
                engine.accusations()
            );
            assert_eq!(
                engine.quarantined(),
                &[culprit],
                "{}: detected and quarantined",
                strategy.name()
            );
            // Quarantine-and-reconverge parity: the post-recovery fixpoint
            // is bit-identical to the run the adversary never joined.
            let outcome = protocol::outcome_from_nodes(&engine.into_nodes()).unwrap();
            assert_eq!(outcome, reference, "{}", strategy.name());
        }
    }

    #[test]
    fn online_auditor_flags_equivocation_as_such() {
        use bgpvcg_bgp::{Adversary, Strategy};
        let g = bgpvcg_netgraph::generators::structured::petersen(Cost::new(2));
        let culprit = AsId::new(4);
        let mut engine = protocol::build_audited_sync_engine(&g).unwrap();
        engine.set_adversary(culprit, Adversary::new(Strategy::Equivocate, 3));
        engine.run_to_convergence();
        assert!(
            engine
                .accusations()
                .iter()
                .flat_map(|acc| &acc.findings)
                .any(|f| f.equivocation),
            "cross-neighbor comparison marks the equivocation flag: {:?}",
            engine.accusations()
        );
    }

    #[test]
    fn fabricated_route_is_detected() {
        // D advertises a route to A it never selected (via Z instead of
        // its actual choice).
        let g = fig1();
        let nodes = converged_nodes(&g);
        let mut tampered = converged_advertisements(&nodes[Fig1::D.index()]);
        tampered.retain(|ad| ad.destination != Fig1::A);
        let neighbor_tables: Vec<(AsId, Vec<RouteAdvertisement>)> = g
            .neighbors(Fig1::D)
            .iter()
            .map(|&a| (a, converged_advertisements(&nodes[a.index()])))
            .collect();
        let findings = audit_node(&g, Fig1::D, &tampered, &neighbor_tables);
        assert!(findings.iter().any(|f| f.destination == Fig1::A));
        assert!(findings[0].to_string().contains("diverges"));
    }
}
