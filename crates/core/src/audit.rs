//! Cross-checking the computation itself (paper, Sect. 7).
//!
//! The paper closes on an unresolved tension: the mechanism removes the
//! incentive to lie about *costs*, "but it is these very ASs that implement
//! the distributed algorithm we have designed … what is to stop them from
//! running a different algorithm that computes prices more favorable to
//! them?" A full answer needs cryptographic or replication machinery beyond
//! the paper's scope, but a useful first line of defence is possible with
//! the data the protocol already exchanges: every quantity a node
//! advertises is a deterministic function of its neighbors' advertisements,
//! so an auditor holding the converged advertisements of a node's
//! neighborhood can **recompute** what that node should have advertised and
//! flag discrepancies.
//!
//! [`audit_node`] does exactly that: it replays one node's route selection
//! and price relaxation from its neighbors' converged advertisements and
//! compares against what the node itself advertised. An honest node always
//! passes (tested); a node that inflates a price, understates a route cost,
//! or advertises a route it did not select is reported with the specific
//! destinations that diverge. This catches *unilateral computation*
//! manipulation at convergence; collusion between adjacent ASs, or lies
//! about the private cost input itself, remain out of reach (the latter by
//! design — that is what the prices are for).

use crate::pricing_node::PricingBgpNode;
use bgpvcg_bgp::{ProtocolNode, RouteAdvertisement, RouteInfo, Update};
use bgpvcg_netgraph::{AsGraph, AsId};
use std::fmt;

/// One detected divergence between what a node advertised and what the
/// algorithm, replayed from its neighborhood, says it should have
/// advertised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// The audited node.
    pub node: AsId,
    /// The destination whose advertised entry diverges.
    pub destination: AsId,
    /// What the node advertised (`None` = nothing/withdrawn).
    pub advertised: Option<RouteInfo>,
    /// What replaying the algorithm on its neighbors' advertisements
    /// yields.
    pub expected: Option<RouteInfo>,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: advertisement for {} diverges from the replayed computation",
            self.node, self.destination
        )
    }
}

/// The advertisements one AS exposes at convergence: its full table,
/// exactly as its neighbors would have last received it.
///
/// In deployment this is what a route collector (or the neighbors
/// themselves) would hand the auditor.
pub fn converged_advertisements(node: &PricingBgpNode) -> Vec<RouteAdvertisement> {
    node.full_table()
        .map(|u| u.advertisements)
        .unwrap_or_default()
}

/// Audits one node: replays route selection and price relaxation from the
/// converged advertisements of its neighbors and diffs the result against
/// the node's own advertisements. Returns all divergences (empty = passes).
///
/// The replay builds a fresh, honest [`PricingBgpNode`] for the same
/// position in the graph, feeds it the neighbors' full tables, iterates its
/// local computation to a fixpoint, and compares tables. At global
/// convergence a correct node's state is exactly this local fixpoint
/// (that is what quiescence means), so any difference is a deviation from
/// the algorithm.
///
/// # Panics
///
/// Panics if `subject` is not a node of `graph`.
pub fn audit_node(
    graph: &AsGraph,
    subject: AsId,
    subject_advertisements: &[RouteAdvertisement],
    neighbor_tables: &[(AsId, Vec<RouteAdvertisement>)],
) -> Vec<AuditFinding> {
    assert!(graph.contains_node(subject), "unknown subject {subject}");
    // Rebuild an honest node and feed it the neighborhood's converged state.
    let mut replay = PricingBgpNode::new(graph, subject);
    let _ = replay.start();
    // Iterate to a local fixpoint: with static inputs the relaxation is a
    // deterministic function, so a couple of passes settle it (each pass
    // re-ingests the same tables; decide/refresh are idempotent on stable
    // input, and price arrays need one extra pass after routes settle).
    for _ in 0..3 {
        for (neighbor, table) in neighbor_tables {
            let update = Update {
                from: *neighbor,
                sender_costs: Vec::new(),
                advertisements: table.clone(),
                id: 0,
                causes: Vec::new(),
            };
            let _ = replay.handle(&[std::sync::Arc::new(update)]);
        }
    }
    let expected = converged_advertisements(&replay);

    let mut findings = Vec::new();
    let lookup = |ads: &[RouteAdvertisement], dest: AsId| -> Option<RouteInfo> {
        ads.iter()
            .find(|ad| ad.destination == dest)
            .map(|ad| ad.info.clone())
    };
    let mut destinations: Vec<AsId> = subject_advertisements
        .iter()
        .map(|ad| ad.destination)
        .chain(expected.iter().map(|ad| ad.destination))
        .collect();
    destinations.sort_unstable();
    destinations.dedup();
    for dest in destinations {
        let advertised = lookup(subject_advertisements, dest);
        let should_be = lookup(&expected, dest);
        if advertised != should_be {
            findings.push(AuditFinding {
                node: subject,
                destination: dest,
                advertised,
                expected: should_be,
            });
        }
    }
    findings
}

/// Audits every node of a converged run against its neighborhood; returns
/// all findings across the network (empty = everyone ran the algorithm).
///
/// # Example
///
/// ```
/// use bgpvcg_core::{audit, protocol};
/// use bgpvcg_netgraph::generators::structured::fig1;
///
/// # fn main() -> Result<(), bgpvcg_netgraph::GraphError> {
/// let g = fig1();
/// let mut engine = protocol::build_sync_engine(&g)?;
/// engine.run_to_convergence();
/// let nodes = engine.into_nodes();
/// assert!(audit::audit_network(&g, &nodes).is_empty(), "honest run passes");
/// # Ok(())
/// # }
/// ```
pub fn audit_network(graph: &AsGraph, nodes: &[PricingBgpNode]) -> Vec<AuditFinding> {
    let tables: Vec<Vec<RouteAdvertisement>> = nodes.iter().map(converged_advertisements).collect();
    let mut findings = Vec::new();
    for node in nodes {
        let subject = node.id();
        let neighbor_tables: Vec<(AsId, Vec<RouteAdvertisement>)> = graph
            .neighbors(subject)
            .iter()
            .map(|&a| (a, tables[a.index()].clone()))
            .collect();
        findings.extend(audit_node(
            graph,
            subject,
            &tables[subject.index()],
            &neighbor_tables,
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use bgpvcg_netgraph::Cost;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn converged_nodes(g: &AsGraph) -> Vec<PricingBgpNode> {
        let mut engine = protocol::build_sync_engine(g).unwrap();
        let report = engine.run_to_convergence();
        assert!(report.converged);
        engine.into_nodes()
    }

    #[test]
    fn honest_network_passes_audit() {
        let g = fig1();
        let nodes = converged_nodes(&g);
        assert!(audit_network(&g, &nodes).is_empty());
    }

    #[test]
    fn honest_random_networks_pass_audit() {
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = erdos_renyi(random_costs(14, 0, 9, &mut rng), 0.3, &mut rng);
            let nodes = converged_nodes(&g);
            assert!(audit_network(&g, &nodes).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn inflated_price_is_detected() {
        // D doctors its advertised price array for destination Z upward —
        // the Sect. 7 manipulation: run a "different algorithm" that
        // reports prices more favorable to itself... here B inflates its
        // own advertised p^D entry to try to drag X's computed price up.
        let g = fig1();
        let nodes = converged_nodes(&g);
        let mut tampered = converged_advertisements(&nodes[Fig1::B.index()]);
        for ad in &mut tampered {
            if ad.destination == Fig1::Z {
                if let RouteInfo::Reachable { prices, .. } = &mut ad.info {
                    for p in prices.iter_mut() {
                        *p += Cost::new(50);
                    }
                }
            }
        }
        let neighbor_tables: Vec<(AsId, Vec<RouteAdvertisement>)> = g
            .neighbors(Fig1::B)
            .iter()
            .map(|&a| (a, converged_advertisements(&nodes[a.index()])))
            .collect();
        let findings = audit_node(&g, Fig1::B, &tampered, &neighbor_tables);
        assert!(
            findings.iter().any(|f| f.destination == Fig1::Z),
            "inflated price must be flagged: {findings:?}"
        );
    }

    #[test]
    fn understated_route_cost_is_detected() {
        // B advertises its route to Z at a fake lower cost (to attract
        // traffic without re-declaring its cost input).
        let g = fig1();
        let nodes = converged_nodes(&g);
        let mut tampered = converged_advertisements(&nodes[Fig1::B.index()]);
        for ad in &mut tampered {
            if ad.destination == Fig1::Z {
                if let RouteInfo::Reachable { path_cost, .. } = &mut ad.info {
                    *path_cost = Cost::ZERO;
                }
            }
        }
        let neighbor_tables: Vec<(AsId, Vec<RouteAdvertisement>)> = g
            .neighbors(Fig1::B)
            .iter()
            .map(|&a| (a, converged_advertisements(&nodes[a.index()])))
            .collect();
        let findings = audit_node(&g, Fig1::B, &tampered, &neighbor_tables);
        assert!(findings.iter().any(|f| f.destination == Fig1::Z));
    }

    #[test]
    fn fabricated_route_is_detected() {
        // D advertises a route to A it never selected (via Z instead of
        // its actual choice).
        let g = fig1();
        let nodes = converged_nodes(&g);
        let mut tampered = converged_advertisements(&nodes[Fig1::D.index()]);
        tampered.retain(|ad| ad.destination != Fig1::A);
        let neighbor_tables: Vec<(AsId, Vec<RouteAdvertisement>)> = g
            .neighbors(Fig1::D)
            .iter()
            .map(|&a| (a, converged_advertisements(&nodes[a.index()])))
            .collect();
        let findings = audit_node(&g, Fig1::D, &tampered, &neighbor_tables);
        assert!(findings.iter().any(|f| f.destination == Fig1::A));
        assert!(findings[0].to_string().contains("diverges"));
    }
}
