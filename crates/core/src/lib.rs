//! The BGP-based VCG mechanism for lowest-cost interdomain routing.
//!
//! This crate implements the contribution of Feigenbaum, Papadimitriou,
//! Sami, and Shenker, *"A BGP-based mechanism for lowest-cost routing"*
//! (PODC 2002; Distributed Computing 18(1), 2005):
//!
//! * [`vcg`] — **Theorem 1**: the unique strategyproof pricing scheme that
//!   pays nothing to nodes carrying no transit traffic. Computed centrally
//!   from lowest-cost and k-avoiding path costs; serves as ground truth.
//! * [`PricingBgpNode`] — **Sect. 6**: the distributed price computation as
//!   a straightforward extension of BGP — the four-case relaxation of the
//!   paper's Fig. 3, running on the substrate of `bgpvcg-bgp`.
//! * [`protocol`] — turnkey runners wiring pricing nodes into the
//!   synchronous or asynchronous engine and extracting a [`RoutingOutcome`].
//! * [`accounting`] — **Sect. 6.4**: per-packet tallies turning prices into
//!   payments under a traffic matrix.
//! * [`strategy`] — the game-theoretic harness: agent utilities, deviation
//!   experiments, and strategyproofness verification.
//! * [`overcharge`] — **Sect. 7**: how far total payments exceed path costs.
//! * [`neighbor_costs`] — **Sect. 3's extension**: per-neighbor (edge)
//!   transit costs with the nodes still the strategic agents.
//! * [`audit`] — a first answer to **Sect. 7's open problem** (what stops
//!   an AS from running a different algorithm?): replay-and-diff auditing
//!   of converged advertisements.
//! * [`uniqueness`] — probing **Theorem 1's uniqueness half**: every scaled
//!   payment rule around the VCG one is manipulable.
//! * [`baseline`] — the predecessors the paper contrasts itself with:
//!   Nisan–Ronen's edge-agent VCG and the centralized single-pair
//!   node-agent mechanism.
//! * [`telemetry`] — mechanism-level metric names for the workspace
//!   observability layer (`bgpvcg-telemetry`); see `docs/OBSERVABILITY.md`.
//!
//! # Quickstart
//!
//! ```
//! use bgpvcg_core::{protocol, vcg};
//! use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
//! use bgpvcg_netgraph::Cost;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = fig1();
//! // Centralized Theorem-1 prices...
//! let reference = vcg::compute(&g)?;
//! // ...and the BGP-based distributed computation.
//! let run = protocol::run_sync(&g)?;
//! assert_eq!(run.outcome, reference);
//! // The paper's worked example: for X→Z traffic, D is paid 3 and B is paid 4.
//! assert_eq!(run.outcome.price(Fig1::X, Fig1::Z, Fig1::D), Some(Cost::new(3)));
//! assert_eq!(run.outcome.price(Fig1::X, Fig1::Z, Fig1::B), Some(Cost::new(4)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod accounting;
pub mod audit;
pub mod baseline;
pub mod econ;
pub mod neighbor_costs;
pub mod overcharge;
pub mod protocol;
pub mod strategy;
pub mod telemetry;
pub mod uniqueness;
pub mod vcg;

mod errors;
mod invariants;
mod outcome;
mod pricing_node;

pub use errors::MechanismError;
pub use outcome::{PairOutcome, RoutingOutcome};
pub use pricing_node::PricingBgpNode;
