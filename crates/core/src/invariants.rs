//! Feature-gated mechanism invariant hooks.
//!
//! With the `invariant-checks` cargo feature enabled, these functions
//! install `debug_assert!`-based audits at the mechanism's relaxation and
//! precondition points; without it they compile to nothing. `cargo xtask
//! audit` verifies both that the hooks stay wired in and that the
//! feature-enabled test suite passes.

#[cfg(feature = "invariant-checks")]
use bgpvcg_bgp::{PathEntry, SelectedRoute};
#[cfg(feature = "invariant-checks")]
use bgpvcg_netgraph::{AsGraph, AsId, Cost};

/// Audits one price-relaxation pass of [`crate::PricingBgpNode`]: the price
/// array aligns one-to-one with the route's transit nodes.
///
/// Deliberately *not* checked here: `p^k ≥ c_k`. That holds at convergence
/// (see [`converged_prices`]) but not per pass — during reconvergence after
/// a cost change, a neighbor's price array grounded in the old declared
/// cost can legally sit below the restamped `c_k` until relaxation flushes
/// it.
#[cfg(feature = "invariant-checks")]
pub(crate) fn relaxation_step(transit: &[PathEntry], prices: &[Cost]) {
    debug_assert_eq!(
        transit.len(),
        prices.len(),
        "price array must align with the route's transit nodes"
    );
}

#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub(crate) fn relaxation_step<P, C>(_transit: &[P], _prices: &[C]) {}

/// Audits one extracted pair of a quiescent network: Theorem 1 prices are
/// `p^k = c_k + margin` with `margin ≥ 0`, so at the fixpoint every price
/// is at least the transit node's declared cost on the selected route
/// (`INFINITE` entries — monopoly positions after topology damage — satisfy
/// the bound trivially).
#[cfg(feature = "invariant-checks")]
pub(crate) fn converged_prices(route: Option<&SelectedRoute>, prices: &[(AsId, Cost)]) {
    let Some(route) = route else {
        debug_assert!(prices.is_empty(), "prices extracted without a route");
        return;
    };
    for &(k, price) in prices {
        let declared = route
            .path
            .iter()
            .find(|e| e.node == k)
            .map(|e| e.cost)
            .unwrap_or(Cost::INFINITE);
        debug_assert!(
            price >= declared,
            "converged price {price} of {k} below its declared cost {declared}"
        );
    }
}

#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub(crate) fn converged_prices<R, P>(_route: Option<&R>, _prices: &[P]) {}

/// Audits one margin-relaxation pass of the neighbor-cost extension's
/// pricing node: the margin array must align one-to-one with the route's
/// transit nodes (margins themselves are non-negative by construction —
/// [`bgpvcg_netgraph::Cost`] is unsigned saturating arithmetic).
#[cfg(feature = "invariant-checks")]
pub(crate) fn margin_step(transit: &[PathEntry], margins: &[Cost]) {
    debug_assert_eq!(
        transit.len(),
        margins.len(),
        "margin array must align with the route's transit nodes"
    );
}

#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub(crate) fn margin_step<P, C>(_transit: &[P], _margins: &[C]) {}

/// Audits the mechanism's graph preconditions after validation: a graph
/// that passed [`AsGraph::validate_for_mechanism`] really is biconnected,
/// which is what guarantees every k-avoiding path (and hence every price)
/// exists.
#[cfg(feature = "invariant-checks")]
pub(crate) fn mechanism_preconditions(graph: &AsGraph) {
    debug_assert!(
        graph.is_biconnected(),
        "validated mechanism input must be biconnected"
    );
}

#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub(crate) fn mechanism_preconditions<G>(_graph: &G) {}
