//! Typed errors for the mechanism runners.
//!
//! The protocol hot paths are panic-free by policy (enforced by
//! `cargo xtask lint`): conditions that used to be `expect(...)` calls in
//! the runners are reported as [`MechanismError`] values instead, so a
//! caller embedding the mechanism in a larger system can observe — rather
//! than crash on — a graph that lost biconnectivity or an outcome assembled
//! before prices converged.

use bgpvcg_bgp::forwarding::ForwardingError;
use bgpvcg_netgraph::{AsId, GraphError};
use std::error::Error;
use std::fmt;

/// Why a mechanism run could not produce a routing outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MechanismError {
    /// The input graph failed validation (size, connectivity,
    /// biconnectivity, …).
    Graph(GraphError),
    /// A selected route's transit node carried no converged price entry —
    /// the outcome was read before the pricing fixpoint was reached.
    MissingPrice {
        /// Source AS of the priced route.
        source: AsId,
        /// Destination AS of the priced route.
        destination: AsId,
        /// The transit node whose price entry is absent.
        transit: AsId,
    },
    /// Traffic was demanded between a pair no selected route serves.
    UnroutedPair {
        /// Source AS of the demanded flow.
        source: AsId,
        /// Destination AS of the demanded flow.
        destination: AsId,
    },
    /// Data-plane forwarding across the converged tables failed or diverged
    /// from the priced control-plane route.
    Forwarding(ForwardingError),
}

impl fmt::Display for MechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MechanismError::Graph(e) => write!(f, "graph error: {e}"),
            MechanismError::MissingPrice {
                source,
                destination,
                transit,
            } => write!(
                f,
                "no converged price for transit {transit} on route {source}->{destination}"
            ),
            MechanismError::UnroutedPair {
                source,
                destination,
            } => write!(
                f,
                "traffic demanded for unrouted pair {source}->{destination}"
            ),
            MechanismError::Forwarding(e) => write!(f, "forwarding error: {e}"),
        }
    }
}

impl Error for MechanismError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MechanismError::Graph(e) => Some(e),
            MechanismError::Forwarding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for MechanismError {
    fn from(e: GraphError) -> Self {
        MechanismError::Graph(e)
    }
}

impl From<ForwardingError> for MechanismError {
    fn from(e: ForwardingError) -> Self {
        MechanismError::Forwarding(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_errors_wrap_and_chain() {
        let err: MechanismError = GraphError::NotBiconnected.into();
        assert!(matches!(err, MechanismError::Graph(_)));
        assert!(Error::source(&err).is_some());
        assert!(err.to_string().contains("graph error"));
    }

    #[test]
    fn missing_price_names_the_route() {
        let err = MechanismError::MissingPrice {
            source: AsId::new(1),
            destination: AsId::new(2),
            transit: AsId::new(3),
        };
        let text = err.to_string();
        assert!(text.contains("1") && text.contains("2") && text.contains("3"));
        assert!(Error::source(&err).is_none());
    }
}
