//! Theorem 1: the unique strategyproof pricing scheme, computed centrally.
//!
//! For a biconnected AS graph with declared costs `c`, routing along LCPs,
//! the only strategyproof payment scheme that gives nothing to nodes
//! carrying no transit traffic pays each transit node `k` on the LCP from
//! `i` to `j` the per-packet price
//!
//! ```text
//! p^k_ij = c_k + Cost(P_{-k}(c; i, j)) − Cost(P(c; i, j))
//! ```
//!
//! where `P` is the selected LCP and `P_{-k}` the lowest-cost k-avoiding
//! path. This module computes those prices from the centralized routing
//! structures of `bgpvcg-lcp`; it is the ground truth against which the
//! distributed protocol is checked (Theorem 2), and the reference
//! implementation used by the strategyproofness harness.

use crate::outcome::{PairOutcome, RoutingOutcome};
use bgpvcg_lcp::avoiding::AvoidanceTable;
use bgpvcg_lcp::AllPairsLcp;
use bgpvcg_netgraph::{AsGraph, Cost, GraphError};

/// Computes the full VCG outcome — all LCPs and all prices — for a
/// biconnected graph.
///
/// # Errors
///
/// Returns the graph-validation error if the graph violates the mechanism's
/// preconditions (too small, disconnected, or not biconnected — in the last
/// case some price would be undefined, the paper's monopoly situation).
///
/// # Example
///
/// ```
/// use bgpvcg_core::vcg;
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_netgraph::Cost;
///
/// # fn main() -> Result<(), bgpvcg_netgraph::GraphError> {
/// let outcome = vcg::compute(&fig1())?;
/// // Sect. 4's overcharging example: D is paid 9 per Y→Z packet even
/// // though its declared cost is 1.
/// assert_eq!(outcome.price(Fig1::Y, Fig1::Z, Fig1::D), Some(Cost::new(9)));
/// # Ok(())
/// # }
/// ```
pub fn compute(graph: &AsGraph) -> Result<RoutingOutcome, GraphError> {
    graph.validate_for_mechanism()?;
    let lcp = AllPairsLcp::compute(graph);
    // The subtree-local computation (Sect. 6.2's suffix structure) produces
    // the identical table to the per-(j,k) punctured Dijkstra — asserted in
    // `bgpvcg-lcp`'s tests — several times faster on sparse graphs.
    let avoidance = AvoidanceTable::compute_fast(graph, &lcp);
    from_parts(graph, &lcp, &avoidance)
}

/// Computes the outcome from precomputed routing structures (useful when
/// the caller already has them, e.g. in benchmarks that sweep many traffic
/// matrices over one topology).
///
/// # Errors
///
/// Returns [`GraphError::NotBiconnected`] if some required k-avoiding path
/// does not exist; [`compute`] validates the graph up front so this can
/// only surface here when bypassing validation.
pub fn from_parts(
    graph: &AsGraph,
    lcp: &AllPairsLcp,
    avoidance: &AvoidanceTable,
) -> Result<RoutingOutcome, GraphError> {
    let n = graph.node_count();
    let mut pairs: Vec<Option<PairOutcome>> = vec![None; n * n];
    for i in graph.nodes() {
        for j in graph.nodes() {
            if i == j {
                continue;
            }
            let Some(route) = lcp.route(i, j) else {
                continue;
            };
            let lcp_cost = route.transit_cost();
            let entries = avoidance.entries(i, j);
            let mut prices = Vec::with_capacity(entries.len());
            for entry in entries {
                // An infinite k-avoiding cost means no k-avoiding path
                // exists: the graph lost biconnectivity.
                let avoid_cost = entry.cost.finite().ok_or(GraphError::NotBiconnected)?;
                let margin = Cost::new(avoid_cost)
                    .checked_sub(lcp_cost)
                    .expect("a k-avoiding path is itself a path, so it cannot beat the LCP"); // lint:allow(mathematical invariant of shortest paths)
                prices.push((entry.avoided, graph.cost(entry.avoided) + margin));
            }
            pairs[i.index() * n + j.index()] = Some(PairOutcome::new(route.clone(), prices));
        }
    }
    Ok(RoutingOutcome::from_pairs(n, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::{fig1, ring, wheel, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, from_edges, random_costs};
    use bgpvcg_netgraph::AsId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_worked_example_x_to_z() {
        // Sect. 4: "D should be paid c_D + [5 − 3] = 3. Similarly, AS B is
        // paid c_B + [5 − 3] = 4."
        let outcome = compute(&fig1()).unwrap();
        assert_eq!(outcome.price(Fig1::X, Fig1::Z, Fig1::D), Some(Cost::new(3)));
        assert_eq!(outcome.price(Fig1::X, Fig1::Z, Fig1::B), Some(Cost::new(4)));
    }

    #[test]
    fn paper_worked_example_y_to_z_overcharges() {
        // Sect. 4: "D's payment for this packet is 1 + [9 − 1] = 9, even
        // though D's cost is still 1."
        let outcome = compute(&fig1()).unwrap();
        assert_eq!(outcome.price(Fig1::Y, Fig1::Z, Fig1::D), Some(Cost::new(9)));
        // Y D Z has a single transit node.
        assert_eq!(outcome.pair(Fig1::Y, Fig1::Z).unwrap().prices().len(), 1);
    }

    #[test]
    fn price_at_least_declared_cost() {
        // p^k = c_k + (avoiding − lcp) and avoiding ≥ lcp, so p^k ≥ c_k.
        let mut rng = StdRng::seed_from_u64(1);
        let costs = random_costs(15, 0, 9, &mut rng);
        let g = erdos_renyi(costs, 0.3, &mut rng);
        let outcome = compute(&g).unwrap();
        for (_, _, pair) in outcome.pairs() {
            for &(k, p) in pair.prices() {
                assert!(p >= g.cost(k), "price {p} below cost {} of {k}", g.cost(k));
            }
        }
    }

    #[test]
    fn off_route_nodes_have_no_price() {
        let outcome = compute(&fig1()).unwrap();
        assert_eq!(outcome.price(Fig1::X, Fig1::Z, Fig1::A), None);
        assert_eq!(outcome.price(Fig1::X, Fig1::Z, Fig1::Y), None);
        // Endpoints never have prices either.
        assert_eq!(outcome.price(Fig1::X, Fig1::Z, Fig1::X), None);
        assert_eq!(outcome.price(Fig1::X, Fig1::Z, Fig1::Z), None);
    }

    #[test]
    fn rejects_non_biconnected_graphs() {
        let path = from_edges(vec![Cost::new(1); 3], &[(0, 1), (1, 2)]);
        assert_eq!(compute(&path).unwrap_err(), GraphError::NotBiconnected);
    }

    #[test]
    fn rejects_tiny_graphs() {
        let mut b = bgpvcg_netgraph::AsGraph::builder();
        b.add_node(Cost::ZERO);
        assert!(matches!(
            compute(&b.build()).unwrap_err(),
            GraphError::TooSmall { .. }
        ));
    }

    #[test]
    fn symmetric_prices_on_uniform_ring() {
        // On a uniform ring the mechanism is symmetric: reversing a pair
        // reverses the route and preserves the price of each transit node.
        let g = ring(7, Cost::new(2));
        let outcome = compute(&g).unwrap();
        for i in g.nodes() {
            for j in g.nodes() {
                if i == j {
                    continue;
                }
                let fwd = outcome.pair(i, j).unwrap();
                let back = outcome.pair(j, i).unwrap();
                for &(k, p) in fwd.prices() {
                    assert_eq!(back.price_of(k), Some(p), "{i}->{j} vs {j}->{i} at {k}");
                }
            }
        }
    }

    #[test]
    fn wheel_hub_extracts_rim_detour_surplus() {
        // Wheel with free hub and expensive rim: rim-to-rim LCPs use the
        // hub; the hub's price includes the full detour margin.
        let g = wheel(6, Cost::ZERO, Cost::new(10));
        let outcome = compute(&g).unwrap();
        let hub = AsId::new(0);
        // Opposite rim nodes 1 and 3: LCP is 1,0,3 (cost 0); best
        // hub-avoiding path is 1,2,3 (cost 10).
        let pair = outcome.pair(AsId::new(1), AsId::new(3)).unwrap();
        assert_eq!(pair.route().nodes(), &[AsId::new(1), hub, AsId::new(3)]);
        assert_eq!(pair.price_of(hub), Some(Cost::new(10)));
    }

    #[test]
    fn from_parts_matches_compute() {
        let g = fig1();
        let lcp = AllPairsLcp::compute(&g);
        let avoidance = AvoidanceTable::compute(&g, &lcp);
        assert_eq!(
            from_parts(&g, &lcp, &avoidance).unwrap(),
            compute(&g).unwrap()
        );
    }

    #[test]
    fn prices_match_exhaustive_path_enumeration() {
        // Ground truth from first principles: enumerate ALL simple paths,
        // take the minimum cost and the minimum k-avoiding cost directly
        // from the definition, and compare with the production pipeline.
        fn all_simple_path_costs(g: &AsGraph, i: AsId, j: AsId) -> Vec<(Vec<AsId>, u64)> {
            fn dfs(
                g: &AsGraph,
                at: AsId,
                j: AsId,
                path: &mut Vec<AsId>,
                out: &mut Vec<(Vec<AsId>, u64)>,
            ) {
                if at == j {
                    let cost: u64 = path[1..path.len() - 1]
                        .iter()
                        .map(|&k| g.cost(k).finite().unwrap())
                        .sum();
                    out.push((path.clone(), cost));
                    return;
                }
                for &next in g.neighbors(at) {
                    if !path.contains(&next) {
                        path.push(next);
                        dfs(g, next, j, path, out);
                        path.pop();
                    }
                }
            }
            let mut out = Vec::new();
            let mut path = vec![i];
            dfs(g, i, j, &mut path, &mut out);
            out
        }

        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let costs = random_costs(8, 0, 7, &mut rng);
            let g = erdos_renyi(costs, 0.4, &mut rng);
            let outcome = compute(&g).unwrap();
            for i in g.nodes() {
                for j in g.nodes() {
                    if i == j {
                        continue;
                    }
                    let paths = all_simple_path_costs(&g, i, j);
                    let lcp_cost = paths.iter().map(|(_, c)| *c).min().unwrap();
                    let pair = outcome.pair(i, j).unwrap();
                    assert_eq!(
                        pair.route().transit_cost(),
                        Cost::new(lcp_cost),
                        "seed {seed}: LCP cost {i}->{j}"
                    );
                    for &(k, price) in pair.prices() {
                        let avoid_cost = paths
                            .iter()
                            .filter(|(p, _)| !p.contains(&k))
                            .map(|(_, c)| *c)
                            .min()
                            .expect("biconnected");
                        let expected = g.cost(k).finite().unwrap() + avoid_cost - lcp_cost;
                        assert_eq!(
                            price,
                            Cost::new(expected),
                            "seed {seed}: price of {k} on {i}->{j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_reachable_pair_is_priced() {
        let mut rng = StdRng::seed_from_u64(5);
        let costs = random_costs(12, 1, 6, &mut rng);
        let g = erdos_renyi(costs, 0.4, &mut rng);
        let outcome = compute(&g).unwrap();
        let n = g.node_count();
        assert_eq!(outcome.pairs().count(), n * (n - 1));
    }
}
