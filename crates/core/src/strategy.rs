//! The game-theoretic harness: utilities, deviations, strategyproofness.
//!
//! The mechanism's point is Theorem 1: with VCG prices, *truthful cost
//! declaration is a dominant strategy* — no AS can increase its utility
//! `τ_k = p_k − (true cost incurred)` by declaring any cost other than its
//! true one, regardless of what everyone else declares. This module computes
//! utilities under arbitrary declarations and provides a deviation-testing
//! harness used by experiment E2 and the property-based test suite.

use crate::accounting::PaymentLedger;
use crate::errors::MechanismError;
use crate::vcg;
use bgpvcg_netgraph::{AsGraph, AsId, Cost, GraphError, TrafficMatrix};
use rand::Rng;

/// The result of evaluating one declaration profile from agent `k`'s
/// perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentView {
    /// What `k` declared.
    pub declared: Cost,
    /// Payment `p_k` received under that declaration.
    pub payment: u128,
    /// Transit packets `k` carried under that declaration.
    pub packets_carried: u128,
    /// Utility `τ_k`: payment minus *true*-cost-weighted carried traffic.
    pub utility: i128,
}

/// Computes agent `k`'s utility when it declares `declared` while everyone
/// else declares the costs recorded in `graph` (the paper's `c|^k x`
/// profile). The *incurred* cost is always computed with `k`'s **true**
/// cost, `graph.cost(k)` — that asymmetry is what makes lying potentially
/// attractive and is exactly what the VCG prices neutralize.
///
/// # Errors
///
/// Returns the graph-validation error if the graph violates the mechanism's
/// preconditions.
///
/// # Example
///
/// ```
/// use bgpvcg_core::strategy;
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_netgraph::{Cost, TrafficMatrix};
///
/// # fn main() -> Result<(), bgpvcg_core::MechanismError> {
/// let g = fig1();
/// let t = TrafficMatrix::uniform(g.node_count(), 1);
/// let truthful = strategy::evaluate(&g, Fig1::D, g.cost(Fig1::D), &t)?;
/// let lying = strategy::evaluate(&g, Fig1::D, Cost::new(8), &t)?;
/// assert!(truthful.utility >= lying.utility, "lying must not pay off");
/// # Ok(())
/// # }
/// ```
pub fn evaluate(
    graph: &AsGraph,
    k: AsId,
    declared: Cost,
    traffic: &TrafficMatrix,
) -> Result<AgentView, MechanismError> {
    let declared_graph = graph.with_cost(k, declared);
    let outcome = vcg::compute(&declared_graph)?;
    let ledger = PaymentLedger::settle(&outcome, traffic)?;
    Ok(AgentView {
        declared,
        payment: ledger.payment(k),
        packets_carried: ledger.packets_carried(k),
        utility: ledger.welfare(k, graph.cost(k)),
    })
}

/// A single deviation test: did declaring `lie` beat the truth for agent
/// `k`?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviationOutcome {
    /// The agent that deviated.
    pub agent: AsId,
    /// Its view under truthful declaration.
    pub truthful: AgentView,
    /// Its view under the lie.
    pub deviant: AgentView,
}

impl DeviationOutcome {
    /// `true` iff the lie strictly increased utility — a strategyproofness
    /// violation (never expected).
    pub fn profitable(&self) -> bool {
        self.deviant.utility > self.truthful.utility
    }

    /// How much utility the lie cost the agent (≥ 0 when strategyproof).
    pub fn regret(&self) -> i128 {
        self.truthful.utility - self.deviant.utility
    }
}

/// Evaluates one explicit deviation.
///
/// # Errors
///
/// Returns the graph-validation error if the graph violates the mechanism's
/// preconditions.
pub fn deviate(
    graph: &AsGraph,
    k: AsId,
    lie: Cost,
    traffic: &TrafficMatrix,
) -> Result<DeviationOutcome, MechanismError> {
    Ok(DeviationOutcome {
        agent: k,
        truthful: evaluate(graph, k, graph.cost(k), traffic)?,
        deviant: evaluate(graph, k, lie, traffic)?,
    })
}

/// The network-efficiency consequence of one declaration profile: the
/// total *true* cost `V(c)` of routing all traffic along the routes
/// selected under the *declared* costs.
///
/// This is the quantity the mechanism exists to protect (paper, Sect. 1:
/// lying "would cause traffic to take non-optimal routes and thereby
/// interfere with overall network efficiency"): routes are computed from
/// declarations, but society pays true costs, so `V` is minimized exactly
/// when everyone declares truthfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EfficiencyView {
    /// Total true cost under truthful routing — the optimum.
    pub truthful_total_cost: u128,
    /// Total true cost along the routes selected under the deviant
    /// declarations. Never smaller than the truthful total.
    pub deviant_total_cost: u128,
}

impl EfficiencyView {
    /// The absolute efficiency loss the lie inflicts on the network.
    pub fn loss(&self) -> u128 {
        self.deviant_total_cost - self.truthful_total_cost
    }
}

/// Measures the efficiency loss of agent `k` declaring `lie`: total true
/// cost of the traffic under truthful routes vs under the routes the lie
/// induces.
///
/// # Errors
///
/// Returns the graph-validation error if the graph violates the
/// mechanism's preconditions.
///
/// # Example
///
/// ```
/// use bgpvcg_core::strategy;
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_netgraph::{Cost, TrafficMatrix};
///
/// # fn main() -> Result<(), bgpvcg_netgraph::GraphError> {
/// let g = fig1();
/// let t = TrafficMatrix::uniform(g.node_count(), 1);
/// // A understating its cost drags traffic onto genuinely expensive paths.
/// let eff = strategy::efficiency_loss(&g, Fig1::A, Cost::ZERO, &t)?;
/// assert!(eff.loss() > 0);
/// # Ok(())
/// # }
/// ```
pub fn efficiency_loss(
    graph: &AsGraph,
    k: AsId,
    lie: Cost,
    traffic: &TrafficMatrix,
) -> Result<EfficiencyView, GraphError> {
    let true_outcome = vcg::compute(graph)?;
    let deviant_outcome = vcg::compute(&graph.with_cost(k, lie))?;
    let true_cost_of = |outcome: &crate::RoutingOutcome| -> u128 {
        let mut total: u128 = 0;
        for (i, j, t) in traffic.flows() {
            let pair = outcome
                .pair(i, j)
                .expect("validated graphs route every pair"); // lint:allow(vcg::compute validated connectivity two lines up)
            let route_true_cost: u128 = pair
                .route()
                .transit_nodes()
                .iter()
                .map(|&x| u128::from(graph.cost(x).finite().expect("finite true costs"))) // lint:allow(AsGraph construction rejects infinite node costs)
                .sum();
            total += route_true_cost * u128::from(t);
        }
        total
    };
    Ok(EfficiencyView {
        truthful_total_cost: true_cost_of(&true_outcome),
        deviant_total_cost: true_cost_of(&deviant_outcome),
    })
}

/// Sweeps random deviations for every agent and returns them all; the
/// strategyproofness assertion is that none is
/// [`profitable`](DeviationOutcome::profitable).
///
/// `lies_per_agent` random declarations are drawn per agent from
/// `[0, lie_ceiling]`, plus the two structured lies everyone tries first:
/// zero (maximal traffic attraction) and `lie_ceiling` (maximal price
/// extraction) — the two temptations footnote 1 of the paper describes.
///
/// # Errors
///
/// Returns the graph-validation error if the graph violates the mechanism's
/// preconditions.
///
/// # Example
///
/// ```
/// use bgpvcg_core::strategy;
/// use bgpvcg_netgraph::generators::structured::fig1;
/// use bgpvcg_netgraph::TrafficMatrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), bgpvcg_core::MechanismError> {
/// let g = fig1();
/// let traffic = TrafficMatrix::uniform(g.node_count(), 1);
/// let mut rng = StdRng::seed_from_u64(1);
/// let outcomes = strategy::sweep_deviations(&g, &traffic, 3, 12, &mut rng)?;
/// assert!(outcomes.iter().all(|d| !d.profitable()), "Theorem 1");
/// # Ok(())
/// # }
/// ```
pub fn sweep_deviations<R: Rng + ?Sized>(
    graph: &AsGraph,
    traffic: &TrafficMatrix,
    lies_per_agent: usize,
    lie_ceiling: u64,
    rng: &mut R,
) -> Result<Vec<DeviationOutcome>, MechanismError> {
    let mut outcomes = Vec::new();
    for k in graph.nodes() {
        let mut lies = vec![Cost::ZERO, Cost::new(lie_ceiling)];
        for _ in 0..lies_per_agent {
            lies.push(Cost::new(rng.gen_range(0..=lie_ceiling)));
        }
        for lie in lies {
            if lie == graph.cost(k) {
                continue; // not a deviation
            }
            outcomes.push(deviate(graph, k, lie, traffic)?);
        }
    }
    Ok(outcomes)
}

/// Like [`sweep_deviations`], but records the sweep's volume into
/// `telemetry`'s shared registry: deviations evaluated and — Theorem 1
/// willing, never — profitable ones (see [`crate::telemetry::metric`]).
///
/// # Errors
///
/// Returns the graph-validation error if the graph violates the mechanism's
/// preconditions.
pub fn sweep_deviations_telemetry<R: Rng + ?Sized>(
    graph: &AsGraph,
    traffic: &TrafficMatrix,
    lies_per_agent: usize,
    lie_ceiling: u64,
    rng: &mut R,
    telemetry: &bgpvcg_telemetry::Telemetry,
) -> Result<Vec<DeviationOutcome>, MechanismError> {
    let outcomes = sweep_deviations(graph, traffic, lies_per_agent, lie_ceiling, rng)?;
    telemetry
        .counter(crate::telemetry::metric::DEVIATIONS_EVALUATED)
        .add(outcomes.len() as u64);
    let profitable = outcomes.iter().filter(|d| d.profitable()).count() as u64;
    telemetry
        .counter(crate::telemetry::metric::PROFITABLE_DEVIATIONS)
        .add(profitable);
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform(g: &AsGraph) -> TrafficMatrix {
        TrafficMatrix::uniform(g.node_count(), 1)
    }

    #[test]
    fn truthful_utility_is_nonnegative() {
        let g = fig1();
        let t = uniform(&g);
        for k in g.nodes() {
            let view = evaluate(&g, k, g.cost(k), &t).unwrap();
            assert!(view.utility >= 0, "{k}: {view:?}");
        }
    }

    #[test]
    fn overstating_cost_loses_traffic_not_profit() {
        // D's true cost is 1; declaring 8 pushes D off many LCPs. Utility
        // must not rise.
        let g = fig1();
        let t = uniform(&g);
        let dev = deviate(&g, Fig1::D, Cost::new(8), &t).unwrap();
        assert!(!dev.profitable(), "{dev:?}");
        assert!(
            dev.deviant.packets_carried < dev.truthful.packets_carried,
            "a big overstatement must shed traffic"
        );
    }

    #[test]
    fn understating_cost_attracts_traffic_not_profit() {
        // A's true cost is 5; declaring 0 pulls traffic onto A, but the VCG
        // price is declaration-independent given the route, so A now
        // carries packets paid below its true cost.
        let g = fig1();
        let t = uniform(&g);
        let dev = deviate(&g, Fig1::A, Cost::ZERO, &t).unwrap();
        assert!(!dev.profitable(), "{dev:?}");
        assert!(
            dev.deviant.packets_carried > dev.truthful.packets_carried,
            "a big understatement must attract traffic"
        );
    }

    #[test]
    fn fig1_full_sweep_has_no_profitable_deviation() {
        let g = fig1();
        let t = uniform(&g);
        let mut rng = StdRng::seed_from_u64(7);
        let outcomes = sweep_deviations(&g, &t, 6, 12, &mut rng).unwrap();
        assert!(!outcomes.is_empty());
        for dev in &outcomes {
            assert!(!dev.profitable(), "profitable lie found: {dev:?}");
            assert!(dev.regret() >= 0);
        }
    }

    #[test]
    fn random_graph_sweep_has_no_profitable_deviation() {
        let mut rng = StdRng::seed_from_u64(11);
        let costs = random_costs(10, 0, 8, &mut rng);
        let g = erdos_renyi(costs, 0.35, &mut rng);
        let t = TrafficMatrix::random(g.node_count(), 1, 5, &mut rng);
        let outcomes = sweep_deviations(&g, &t, 4, 10, &mut rng).unwrap();
        for dev in &outcomes {
            assert!(!dev.profitable(), "profitable lie found: {dev:?}");
        }
    }

    #[test]
    fn deviation_to_truth_is_skipped_by_sweep() {
        let g = fig1();
        let t = uniform(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let outcomes = sweep_deviations(&g, &t, 0, 12, &mut rng).unwrap();
        for dev in &outcomes {
            assert_ne!(dev.deviant.declared, g.cost(dev.agent));
        }
    }

    #[test]
    fn truth_minimizes_total_cost() {
        // V(c) is minimized by truthful declarations: any unilateral lie
        // can only keep or raise the true social cost.
        let g = fig1();
        let t = uniform(&g);
        for k in g.nodes() {
            for lie in [0u64, 1, 4, 8, 20] {
                if Cost::new(lie) == g.cost(k) {
                    continue;
                }
                let eff = efficiency_loss(&g, k, Cost::new(lie), &t).unwrap();
                assert!(
                    eff.deviant_total_cost >= eff.truthful_total_cost,
                    "{k} declaring {lie}: {eff:?}"
                );
            }
        }
    }

    #[test]
    fn understatement_inflicts_measurable_loss() {
        // A's true cost is 5; declaring 0 pulls X<->Z traffic onto the
        // genuinely more expensive X A Z path.
        let g = fig1();
        let t = uniform(&g);
        let eff = efficiency_loss(&g, Fig1::A, Cost::ZERO, &t).unwrap();
        assert!(eff.loss() > 0, "{eff:?}");
    }

    #[test]
    fn truthful_profile_has_zero_loss_against_itself() {
        let g = fig1();
        let t = uniform(&g);
        let eff = efficiency_loss(&g, Fig1::D, g.cost(Fig1::D), &t).unwrap();
        assert_eq!(eff.loss(), 0);
    }

    #[test]
    fn utility_can_be_negative_under_lies() {
        // Understating so hard you carry traffic below cost: utility < 0 is
        // possible (and is the deterrent).
        let g = fig1();
        let t = uniform(&g);
        let view = evaluate(&g, Fig1::A, Cost::ZERO, &t).unwrap();
        // A (true cost 5) now carries packets with prices computed from its
        // declared 0 → utility must be strictly less than truthful.
        let truthful = evaluate(&g, Fig1::A, Cost::new(5), &t).unwrap();
        assert!(view.utility < truthful.utility);
    }
}
