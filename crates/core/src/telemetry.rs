//! Mechanism-level metric names.
//!
//! The protocol-layer `bgp_*` metrics live in
//! [`bgpvcg_bgp::telemetry::metric`]; this module names the metrics the
//! mechanism itself contributes — price extraction, payment settlement, and
//! the strategyproofness harness — so every experiment binary's
//! `--metrics-out` exposition uses one vocabulary. See
//! `docs/OBSERVABILITY.md` for the full taxonomy.

/// Mechanism metric names (`vcg_*` namespace).
pub mod metric {
    /// Routed `(source, destination)` pairs extracted from converged nodes.
    pub const PAIRS_EXTRACTED: &str = "vcg_pairs_extracted_total";
    /// Price entries `p^k_ij` extracted from converged nodes.
    pub const PRICE_ENTRIES_EXTRACTED: &str = "vcg_price_entries_extracted_total";
    /// Traffic-matrix flows settled into payments.
    pub const FLOWS_SETTLED: &str = "vcg_flows_settled_total";
    /// Packets those flows carried.
    pub const PACKETS_SETTLED: &str = "vcg_packets_settled_total";
    /// Total payments disbursed by settlements (saturating at `u64::MAX`).
    pub const PAYMENTS_SETTLED: &str = "vcg_payments_settled_total";
    /// Deviations evaluated by strategy sweeps.
    pub const DEVIATIONS_EVALUATED: &str = "vcg_deviations_evaluated_total";
    /// Deviations that strictly increased the liar's utility. Theorem 1
    /// says this counter never moves; a nonzero value is a mechanism bug.
    pub const PROFITABLE_DEVIATIONS: &str = "vcg_profitable_deviations_total";
    /// Gauge-name prefix for node `k`'s overpayment premium
    /// `Σ (p^k_ij − c_k)` over pairs currently transiting `k`; the full
    /// name appends `k`'s index (see [`crate::econ`]).
    pub const PREMIUM_AS_PREFIX: &str = "vcg_premium_node_";
    /// Aggregate welfare gauge: the sum of every node's premium, sampled
    /// per stage.
    pub const WELFARE_TOTAL: &str = "vcg_welfare_total";
}
