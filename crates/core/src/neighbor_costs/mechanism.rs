//! The VCG mechanism under per-neighbor costs.
//!
//! Green–Laffont applies exactly as in the paper's Theorem 1 — the agents
//! are still the nodes, their type is now a cost *vector* (one entry per
//! adjacent link), and the unique strategyproof payment that gives nothing
//! to non-transit nodes is
//!
//! ```text
//! p^k_ij = c_k(pred) + Cost(P_{-k}(c; i, j)) − Cost(P(c; i, j))
//! ```
//!
//! where `pred` is the node that hands `k` the packet on the selected LCP,
//! so `c_k(pred)` is `k`'s actual incurred cost on that route.

use super::graph::NeighborCostGraph;
use super::routing::{avoiding_tree_nc, shortest_tree_nc};
use crate::outcome::{PairOutcome, RoutingOutcome};
use bgpvcg_netgraph::{AsId, Cost, GraphError, TrafficMatrix};
use rand::Rng;

/// Computes the full generalized-VCG outcome: all lowest-cost routes and
/// all per-packet prices under per-neighbor costs.
///
/// # Errors
///
/// Returns the graph-validation error if the topology violates the
/// mechanism's preconditions (biconnectivity etc.).
///
/// # Example
///
/// ```
/// use bgpvcg_core::{neighbor_costs, vcg};
/// use bgpvcg_netgraph::generators::structured::fig1;
///
/// # fn main() -> Result<(), bgpvcg_netgraph::GraphError> {
/// let base = fig1();
/// let lifted = neighbor_costs::NeighborCostGraph::uniform(&base);
/// // Uniform per-neighbor costs reduce to the base mechanism exactly.
/// assert_eq!(neighbor_costs::compute(&lifted)?, vcg::compute(&base)?);
/// # Ok(())
/// # }
/// ```
pub fn compute(graph: &NeighborCostGraph) -> Result<RoutingOutcome, GraphError> {
    graph.validate_for_mechanism()?;
    let n = graph.node_count();
    let mut pairs: Vec<Option<PairOutcome>> = vec![None; n * n];
    for j in graph.nodes() {
        let tree = shortest_tree_nc(graph, j);
        // One avoiding tree per transit node of T(j), shared across sources.
        let transit_nodes: Vec<AsId> = graph
            .nodes()
            .filter(|&k| k != j && !tree.children(k).is_empty())
            .collect();
        let avoiding: Vec<(AsId, bgpvcg_lcp::DestinationTree)> = transit_nodes
            .iter()
            .map(|&k| (k, avoiding_tree_nc(graph, j, k)))
            .collect();
        for i in graph.nodes() {
            if i == j {
                continue;
            }
            let Some(route) = tree.route(i) else { continue };
            let lcp_cost = route.transit_cost();
            let nodes = route.nodes();
            let transit = route.transit_nodes();
            let mut prices = Vec::with_capacity(transit.len());
            for &k in transit {
                let pos = nodes
                    .iter()
                    .position(|&x| x == k)
                    .expect("a route's transit nodes lie on the route"); // lint:allow(structural invariant of the Route type)
                let pred = nodes[pos - 1];
                let incurred = graph.recv_cost(k, pred);
                let avoid_cost = avoiding
                    .iter()
                    .find(|(a, _)| *a == k)
                    .map(|(_, t)| t.cost(i))
                    .expect("transit_nodes filter above enumerated every transit of T(j)"); // lint:allow(avoiding list is built from the same tree)
                                                                                            // An unsubtractable (infinite) avoiding cost means no
                                                                                            // k-avoiding path exists: biconnectivity was lost.
                let margin = avoid_cost
                    .checked_sub(lcp_cost)
                    .ok_or(GraphError::NotBiconnected)?;
                prices.push((k, incurred + margin));
            }
            pairs[i.index() * n + j.index()] = Some(PairOutcome::new(route.clone(), prices));
        }
    }
    Ok(RoutingOutcome::from_pairs(n, pairs))
}

/// Agent `k`'s view of one declaration profile in the generalized game.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborCostView {
    /// What `k` declared (its full cost vector).
    pub declared: Vec<(AsId, Cost)>,
    /// Payment received.
    pub payment: u128,
    /// Transit packets carried.
    pub packets_carried: u128,
    /// Utility: payment minus *true* incurred costs (per received link).
    pub utility: i128,
}

/// Evaluates agent `k` declaring `declared` while everyone else declares
/// the vectors in `graph`; incurred costs use `graph`'s (true) vectors.
///
/// # Errors
///
/// Returns the graph-validation error if the topology violates the
/// mechanism's preconditions.
///
/// # Panics
///
/// Panics if `declared` does not cover exactly `k`'s neighbors.
pub fn evaluate(
    graph: &NeighborCostGraph,
    k: AsId,
    declared: &[(AsId, Cost)],
    traffic: &TrafficMatrix,
) -> Result<NeighborCostView, GraphError> {
    let declared_graph = graph.with_cost_vector(k, declared);
    let outcome = compute(&declared_graph)?;
    let mut payment: u128 = 0;
    let mut packets_carried: u128 = 0;
    let mut incurred: u128 = 0;
    for (i, j, t) in traffic.flows() {
        // `compute` on a validated (connected) graph routes every pair.
        let pair = outcome.pair(i, j).ok_or(GraphError::Disconnected)?;
        let Some(price) = pair.price_of(k) else {
            continue;
        };
        let nodes = pair.route().nodes();
        let pos = nodes
            .iter()
            .position(|&x| x == k)
            .expect("a priced node is a transit node of the route"); // lint:allow(prices are keyed by the route's own transit nodes)
        let pred = nodes[pos - 1];
        let true_cost = graph
            .recv_cost(k, pred)
            .finite()
            .expect("declared cost vectors are validated finite"); // lint:allow(NeighborCostGraph construction rejects infinite costs)
        incurred += u128::from(true_cost) * u128::from(t);
        payment += u128::from(
            price
                .finite()
                // lint:allow(prices are sums of validated finite costs)
                .expect("finite declared costs and margins sum finite"),
        ) * u128::from(t);
        packets_carried += u128::from(t);
    }
    Ok(NeighborCostView {
        declared: declared.to_vec(),
        payment,
        packets_carried,
        utility: payment as i128 - incurred as i128,
    })
}

/// One deviation test in the generalized game.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborCostDeviation {
    /// The deviating agent.
    pub agent: AsId,
    /// Its view under the truthful vector.
    pub truthful: NeighborCostView,
    /// Its view under the lie.
    pub deviant: NeighborCostView,
}

impl NeighborCostDeviation {
    /// `true` iff the lie strictly increased utility (never expected).
    pub fn profitable(&self) -> bool {
        self.deviant.utility > self.truthful.utility
    }
}

/// Evaluates a random vector lie for agent `k`: each link entry is drawn
/// uniformly from `[0, ceiling]`.
///
/// # Errors
///
/// Returns the graph-validation error if the topology violates the
/// mechanism's preconditions.
pub fn deviate<R: Rng + ?Sized>(
    graph: &NeighborCostGraph,
    k: AsId,
    ceiling: u64,
    traffic: &TrafficMatrix,
    rng: &mut R,
) -> Result<NeighborCostDeviation, GraphError> {
    let truth = graph.cost_vector(k);
    let lie: Vec<(AsId, Cost)> = truth
        .iter()
        .map(|&(a, _)| (a, Cost::new(rng.gen_range(0..=ceiling))))
        .collect();
    Ok(NeighborCostDeviation {
        agent: k,
        truthful: evaluate(graph, k, &truth, traffic)?,
        deviant: evaluate(graph, k, &lie, traffic)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcg;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A random per-neighbor-cost graph: random biconnected topology, then
    /// independent receive costs per directed adjacency.
    fn random_nc_graph(n: usize, seed: u64) -> NeighborCostGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = erdos_renyi(random_costs(n, 0, 9, &mut rng), 0.35, &mut rng);
        let mut g = NeighborCostGraph::uniform(&base);
        for k in base.nodes() {
            for &a in base.neighbors(k) {
                g = g
                    .with_recv_cost(k, a, Cost::new(rng.gen_range(0..10)))
                    .unwrap();
            }
        }
        g
    }

    #[test]
    fn uniform_reduces_to_base_mechanism() {
        let mut rng = StdRng::seed_from_u64(3);
        let base = erdos_renyi(random_costs(14, 0, 9, &mut rng), 0.3, &mut rng);
        let lifted = NeighborCostGraph::uniform(&base);
        assert_eq!(compute(&lifted).unwrap(), vcg::compute(&base).unwrap());
    }

    #[test]
    fn prices_cover_incurred_costs() {
        let g = random_nc_graph(12, 5);
        let outcome = compute(&g).unwrap();
        for (_, _, pair) in outcome.pairs() {
            let nodes = pair.route().nodes();
            for &(k, p) in pair.prices() {
                let pos = nodes.iter().position(|&x| x == k).unwrap();
                let incurred = g.recv_cost(k, nodes[pos - 1]);
                assert!(p >= incurred, "{k}: price {p} below incurred {incurred}");
            }
        }
    }

    #[test]
    fn fig1_with_one_expensive_link_reprices() {
        // Base: X->Z via B,D with p_D = 3. Raising D's cost of receiving
        // from B shifts the LCP to X A Z once it exceeds the margin.
        let g = NeighborCostGraph::uniform(&fig1())
            .with_recv_cost(Fig1::D, Fig1::B, Cost::new(2))
            .unwrap();
        // New LCP cost X B D Z = c_B + c_D(B) = 2 + 2 = 4 < 5, still wins.
        let outcome = compute(&g).unwrap();
        let pair = outcome.pair(Fig1::X, Fig1::Z).unwrap();
        assert_eq!(pair.route().transit_cost(), Cost::new(4));
        // p_D = incurred 2 + (5 - 4) = 3; p_B = 2 + (5 - 4) = 3.
        assert_eq!(pair.price_of(Fig1::D), Some(Cost::new(3)));
        assert_eq!(pair.price_of(Fig1::B), Some(Cost::new(3)));
    }

    #[test]
    fn no_profitable_vector_lie_on_fig1() {
        let g = NeighborCostGraph::uniform(&fig1());
        let traffic = TrafficMatrix::uniform(6, 1);
        let mut rng = StdRng::seed_from_u64(7);
        for k in g.nodes() {
            for _ in 0..8 {
                let dev = deviate(&g, k, 12, &traffic, &mut rng).unwrap();
                assert!(!dev.profitable(), "{dev:?}");
            }
        }
    }

    #[test]
    fn no_profitable_vector_lie_on_random_graphs() {
        let traffic_n = 10;
        for seed in 0..3 {
            let g = random_nc_graph(traffic_n, 40 + seed);
            let traffic = TrafficMatrix::uniform(traffic_n, 1);
            let mut rng = StdRng::seed_from_u64(seed);
            for k in g.nodes() {
                for _ in 0..4 {
                    let dev = deviate(&g, k, 12, &traffic, &mut rng).unwrap();
                    assert!(!dev.profitable(), "seed {seed}: {dev:?}");
                }
            }
        }
    }

    #[test]
    fn truthful_utility_nonnegative() {
        let g = random_nc_graph(12, 9);
        let traffic = TrafficMatrix::uniform(12, 1);
        for k in g.nodes() {
            let truth = g.cost_vector(k);
            let view = evaluate(&g, k, &truth, &traffic).unwrap();
            assert!(view.utility >= 0, "{k}: {view:?}");
        }
    }

    #[test]
    fn rejects_invalid_topology() {
        let mut b = NeighborCostGraph::builder();
        let x = b.add_node();
        let y = b.add_node();
        let z = b.add_node();
        b.add_link(x, y, Cost::ZERO, Cost::ZERO);
        b.add_link(y, z, Cost::ZERO, Cost::ZERO);
        let g = b.build().unwrap();
        assert_eq!(compute(&g).unwrap_err(), GraphError::NotBiconnected);
    }
}
