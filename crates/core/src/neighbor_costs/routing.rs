//! Lowest-cost routing under per-neighbor costs.
//!
//! The receive-side cost model keeps the extension rule local: prepending a
//! new head `u` to a route whose source is `a` adds `c_a(u)` — the cost `a`
//! incurs receiving from `u` — unless `a` is the destination (endpoints are
//! free). That is a function of the two endpoints of the new link only, so
//! the deterministic route order of the base model, Dijkstra, and the tree
//! structures all carry over unchanged.

use super::graph::NeighborCostGraph;
use bgpvcg_lcp::{DestinationTree, Route};
use bgpvcg_netgraph::{AsId, Cost};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The cost added when extending a route with source `a` by a new head
/// `u`, toward destination `dest`.
fn extension_cost(g: &NeighborCostGraph, u: AsId, a: AsId, dest: AsId) -> Cost {
    if a == dest {
        Cost::ZERO
    } else {
        g.recv_cost(a, u)
    }
}

/// Dijkstra under per-neighbor costs, skipping `avoid` (pass `None` to
/// skip nobody).
fn dijkstra_nc(g: &NeighborCostGraph, destination: AsId, avoid: Option<AsId>) -> DestinationTree {
    let n = g.node_count();
    let mut selected: Vec<Option<Route>> = vec![None; n];
    let mut settled = vec![false; n];
    if let Some(avoid) = avoid {
        settled[avoid.index()] = true;
    }
    let mut heap = BinaryHeap::new();
    heap.push(Reverse(Route::trivial(destination)));
    while let Some(Reverse(route)) = heap.pop() {
        let u = route.source();
        if settled[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        selected[u.index()] = Some(route.clone());
        for &v in g.neighbors(u) {
            if settled[v.index()] || route.contains(v) {
                continue;
            }
            // Route from v via u: u incurs its receive cost from v.
            let candidate = route.extend(v, extension_cost(g, v, u, destination));
            let better = match &selected[v.index()] {
                None => true,
                Some(current) => candidate < *current,
            };
            if better {
                selected[v.index()] = Some(candidate.clone());
                heap.push(Reverse(candidate));
            }
        }
    }
    for (idx, slot) in selected.iter_mut().enumerate() {
        if !settled[idx] || Some(AsId::new(idx as u32)) == avoid {
            *slot = None;
        }
    }
    DestinationTree::from_routes(destination, selected)
}

/// The tree `T(j)` of selected lowest-cost routes under per-neighbor costs.
///
/// # Panics
///
/// Panics if `destination` is not in the graph.
///
/// # Example
///
/// ```
/// use bgpvcg_core::neighbor_costs::{shortest_tree_nc, NeighborCostGraph};
/// use bgpvcg_lcp::shortest_tree;
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
///
/// // With uniform per-neighbor costs, routing reduces to the base model.
/// let base = fig1();
/// let g = NeighborCostGraph::uniform(&base);
/// assert_eq!(shortest_tree_nc(&g, Fig1::Z), shortest_tree(&base, Fig1::Z));
/// ```
pub fn shortest_tree_nc(g: &NeighborCostGraph, destination: AsId) -> DestinationTree {
    assert!(
        g.topology().contains_node(destination),
        "destination {destination} not in graph"
    );
    dijkstra_nc(g, destination, None)
}

/// The tree of lowest-cost `avoid`-avoiding routes under per-neighbor
/// costs.
///
/// # Panics
///
/// Panics if either node is absent or `destination == avoid`.
pub fn avoiding_tree_nc(g: &NeighborCostGraph, destination: AsId, avoid: AsId) -> DestinationTree {
    assert!(
        g.topology().contains_node(destination) && g.topology().contains_node(avoid),
        "nodes must be in the graph"
    );
    assert!(destination != avoid, "cannot avoid the destination itself");
    dijkstra_nc(g, destination, Some(avoid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_lcp::{avoiding, shortest_tree};
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_costs_reduce_to_base_routing() {
        let mut rng = StdRng::seed_from_u64(2);
        let base = erdos_renyi(random_costs(15, 0, 9, &mut rng), 0.3, &mut rng);
        let g = NeighborCostGraph::uniform(&base);
        for j in base.nodes() {
            assert_eq!(shortest_tree_nc(&g, j), shortest_tree(&base, j), "dest {j}");
            for k in base.nodes() {
                if k != j {
                    assert_eq!(
                        avoiding_tree_nc(&g, j, k),
                        avoiding::avoiding_tree(&base, j, k),
                        "dest {j} avoid {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn expensive_incoming_link_is_routed_around() {
        // Base Fig. 1: X->Z goes X B D Z. Make D's B-facing link ruinous;
        // the LCP must shift to X A Z (cost 5).
        let g = NeighborCostGraph::uniform(&fig1())
            .with_recv_cost(Fig1::D, Fig1::B, Cost::new(50))
            .unwrap();
        let t = shortest_tree_nc(&g, Fig1::Z);
        let route = t.route(Fig1::X).unwrap();
        assert_eq!(route.nodes(), &[Fig1::X, Fig1::A, Fig1::Z]);
        assert_eq!(route.transit_cost(), Cost::new(5));
        // D itself is still fine via its Y-facing link for Y's traffic.
        assert_eq!(
            t.route(Fig1::Y).unwrap().nodes(),
            &[Fig1::Y, Fig1::D, Fig1::Z]
        );
    }

    #[test]
    fn asymmetric_costs_make_routing_direction_dependent() {
        // Triangle where y's x-facing link is dear but z-facing is cheap:
        // x->? routes around y, while z happily transits y.
        let mut b = NeighborCostGraph::builder();
        let x = b.add_node();
        let y = b.add_node();
        let z = b.add_node();
        let w = b.add_node();
        // square x-y-z-w-x, plus diagonal y-w
        b.add_link(x, y, Cost::ZERO, Cost::new(10)); // y pays 10 receiving from x
        b.add_link(y, z, Cost::new(1), Cost::new(1));
        b.add_link(z, w, Cost::new(1), Cost::new(1));
        b.add_link(w, x, Cost::new(1), Cost::new(1));
        b.add_link(y, w, Cost::new(1), Cost::new(1));
        let g = b.build().unwrap();
        let t = shortest_tree_nc(&g, z);
        // x -> z: via y costs 10 (y's receive from x) ... wait, via w costs
        // w's receive from x = 1. The w route wins.
        assert_eq!(t.route(x).unwrap().nodes(), &[x, w, z]);
        // y -> z is direct (free endpoints).
        assert_eq!(t.route(y).unwrap().nodes(), &[y, z]);
    }

    #[test]
    fn avoiding_tree_skips_node() {
        let g = NeighborCostGraph::uniform(&fig1());
        let t = avoiding_tree_nc(&g, Fig1::Z, Fig1::D);
        assert!(t.route(Fig1::D).is_none());
        assert_eq!(t.cost(Fig1::X), Cost::new(5));
    }

    #[test]
    #[should_panic(expected = "avoid the destination")]
    fn avoiding_destination_rejected() {
        let g = NeighborCostGraph::uniform(&fig1());
        let _ = avoiding_tree_nc(&g, Fig1::Z, Fig1::Z);
    }
}
