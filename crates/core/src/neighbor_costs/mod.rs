//! The paper's cost-model generalization: per-neighbor transit costs.
//!
//! Sect. 3 of the paper notes that the uniform per-packet cost `c_k` "could
//! be extended to handle a more general case: We could have a different
//! cost depending on which neighbor … in which case we would have a cost
//! associated with each edge, as in the cost model of [12, 16]. (The
//! strategic agents would still be the nodes, and hence the VCG mechanism
//! we describe here would remain strategyproof.)"
//!
//! This module implements that extension: every AS `k` declares one cost
//! per adjacent link — the cost it incurs for a transit packet *received
//! over* that link. A path `i, v_1, …, v_t, j` then costs
//! `Σ_m c_{v_m}(pred(v_m))` where `pred(v_m)` is the node that handed
//! `v_m` the packet. Charging on the *receiving* link (rather than the
//! sending one) is the variant that preserves the path-vector suffix
//! structure: extending a route changes only the new transit node's cost
//! term, so per-destination selected routes still form trees and all of the
//! base machinery (deterministic order, Dijkstra, tree types) carries over.
//! A send-side variant would make a route's value depend on its first
//! interior hop and therefore require advertising multiple routes per
//! destination — no longer "a straightforward extension to BGP" — which is
//! presumably why the paper keeps the node-uniform model for its protocol.
//!
//! Both computations are provided: the centralized mechanism
//! ([`compute`] — the uniqueness and strategyproofness arguments of
//! Theorem 1 apply verbatim with `type = the cost vector`, and the tests
//! verify strategyproofness against arbitrary *vector* lies) **and** a
//! distributed BGP-based protocol ([`NcPricingNode`], [`run_nc_sync`]),
//! which relaxes predecessor-independent *margins* instead of prices so
//! neighbors' arrays stay composable — see the module docs of
//! [`NcPricingNode`]'s source for the derivation. When every link of a
//! node carries the same cost, everything reduces exactly to the base
//! mechanism — asserted in the tests.

mod graph;
mod mechanism;
mod node;
mod routing;

pub use graph::{NeighborCostGraph, NeighborCostGraphBuilder};
pub use mechanism::{compute, deviate, evaluate, NeighborCostDeviation, NeighborCostView};
pub use node::{run_nc_async, run_nc_sync, NcPricingNode};
pub use routing::{avoiding_tree_nc, shortest_tree_nc};
