//! The distributed price computation under per-neighbor costs.
//!
//! The paper only sketches the per-edge-cost extension; this module shows
//! its BGP-based protocol extends too. One rewriting makes it go through:
//! relax the **margin** `m^k_ij = Cost(P_{-k}(i,j)) − c(i,j)` instead of
//! the price. The price `p^k_ij = c_k(pred) + m^k_ij` depends on `k`'s
//! predecessor on the selected route, which differs between neighbors'
//! routes — but the margin does not, so neighbors' advertised margin
//! arrays compose exactly like the base model's price arrays:
//!
//! ```text
//! m^k_ij ≤ m^k_aj + c_a(i) + c(a,j) − c(i,j)      (k on a's path)
//! m^k_ij ≤          c_a(i) + c(a,j) − c(i,j)      (k not on a's path)
//! ```
//!
//! where `c_a(i)` is `a`'s receive cost from `i`, known from `a`'s
//! advertised cost vector (carried once per UPDATE — `O(degree)` extra).
//! In the base model (`c_a(i) = c_a` for all `i`) the first rule is the
//! paper's unified case (i)–(iii) bound minus the constant `c_k`, and the
//! second is case (iv) minus `c_k`.

use super::graph::NeighborCostGraph;
use crate::errors::MechanismError;
use crate::outcome::{PairOutcome, RoutingOutcome};
use bgpvcg_bgp::engine::{RunReport, SyncEngine};
use bgpvcg_bgp::{
    LocalEvent, ProtocolNode, RouteAdvertisement, RouteInfo, RouteSelector, StateSnapshot, Update,
};
use bgpvcg_netgraph::{AsId, Cost};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A BGP speaker computing VCG prices under per-neighbor (receive-side)
/// transit costs, by distributed margin relaxation.
///
/// # Example
///
/// ```
/// use bgpvcg_core::neighbor_costs::{self, NcPricingNode, NeighborCostGraph};
/// use bgpvcg_netgraph::generators::structured::fig1;
///
/// # fn main() -> Result<(), bgpvcg_core::MechanismError> {
/// let g = NeighborCostGraph::uniform(&fig1());
/// let (outcome, _) = neighbor_costs::run_nc_sync(&g)?;
/// assert_eq!(outcome, neighbor_costs::compute(&g)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NcPricingNode {
    selector: RouteSelector,
    /// This node's declared receive-cost vector, attached to every UPDATE.
    vector: Vec<(AsId, Cost)>,
    /// Per destination: margin entries aligned with the selected route's
    /// transit nodes, recomputed from scratch on every refresh (same
    /// rationale as the base `PricingBgpNode`).
    margins: BTreeMap<AsId, Vec<Cost>>,
    /// Last advertised state per destination, for change suppression.
    /// Always holds the *full* route state — when a compressed
    /// [`RouteInfo::PriceDelta`] goes out on the wire, this map records the
    /// reassembled `Reachable` it stands for.
    advertised: BTreeMap<AsId, RouteInfo>,
    /// Whether change advertisements may be compressed to
    /// [`RouteInfo::PriceDelta`] when only margin entries relaxed on an
    /// unchanged selected path. On by default.
    delta_encoding: bool,
}

impl NcPricingNode {
    /// Creates the node for AS `id` of the generalized graph.
    ///
    /// The selector's scalar declared cost is zero: in this model a node's
    /// cost lives on its links, and each path entry is restamped by the
    /// extender with the cost matching the entry's predecessor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the graph.
    pub fn new(graph: &NeighborCostGraph, id: AsId) -> Self {
        NcPricingNode {
            selector: RouteSelector::new(id, Cost::ZERO, graph.neighbors(id).iter().copied()),
            vector: graph.cost_vector(id),
            margins: BTreeMap::new(),
            advertised: BTreeMap::new(),
            delta_encoding: true,
        }
    }

    /// Enables or disables [`RouteInfo::PriceDelta`] compression of change
    /// advertisements (on by default). The delta-stream equivalence
    /// proptests run both settings and assert identical fixpoints.
    pub fn set_delta_encoding(&mut self, on: bool) {
        self.delta_encoding = on;
    }

    /// One node per AS, in AS order.
    pub fn from_graph(graph: &NeighborCostGraph) -> Vec<Self> {
        graph
            .nodes()
            .map(|id| NcPricingNode::new(graph, id))
            .collect()
    }

    /// Read access to the routing decision process.
    pub fn selector(&self) -> &RouteSelector {
        &self.selector
    }

    /// The current price `p^k = c_k(pred) + margin` for transit node `k` of
    /// the selected route to `dest`.
    pub fn price(&self, dest: AsId, k: AsId) -> Option<Cost> {
        let route = self.selector.selected(dest)?;
        if route.path.len() < 3 {
            return None;
        }
        let transit = &route.path[1..route.path.len() - 1];
        let pos = transit.iter().position(|e| e.node == k)?;
        let margin = self.margins.get(&dest)?.get(pos).copied()?;
        // The path entry carries c_k(pred) for this path (restamped on
        // extension).
        // lint:allow(bounds: pos is a position hit over transit itself)
        Some(transit[pos].cost + margin)
    }

    /// Recomputes the margin array for `dest` from the current Rib-In;
    /// returns `true` if it changed.
    fn refresh_margins(&mut self, dest: AsId) -> bool {
        let me = self.selector.id();
        if dest == me {
            return false;
        }
        let Some(route) = self.selector.selected(dest) else {
            return self.margins.remove(&dest).is_some();
        };
        if route.path.len() < 3 {
            return self.margins.remove(&dest).is_some();
        }
        let transit = &route.path[1..route.path.len() - 1];
        let mut arr = vec![Cost::INFINITE; transit.len()];
        let my_route_cost = route.cost;

        // Neighbors outer, transit inner: the per-advertisement values
        // (receive cost, shift) hoist out of the transit scan and the
        // Rib-In is probed once per neighbor. The component-wise minimum
        // is order-independent, so the array is identical either way.
        for (a, info) in self.selector.rib_for(dest) {
            // c_a(i): a's receive cost from us, from a's vector.
            let Some(a_recv_from_me) = self.selector.recv_cost_from(a) else {
                continue;
            };
            let RouteInfo::Reachable {
                path_cost: a_route_cost,
                ..
            } = info
            else {
                continue;
            };
            let Some(shift) = (a_recv_from_me + *a_route_cost).checked_sub(my_route_cost) else {
                continue;
            };
            for (pos, k_entry) in transit.iter().enumerate() {
                let k = k_entry.node;
                if a == k {
                    continue; // the link i–a is never on a k-avoiding path
                }
                let bound = if let Some(m) = info.price_of(k) {
                    // k is transit on a's path: compose margins.
                    m + shift
                } else if !info.contains(k) {
                    // a's path is itself k-avoiding once extended by i–a.
                    shift
                } else {
                    continue; // k is an endpoint of a's path (only k == dest)
                };
                // lint:allow(bounds: pos enumerates transit and arr is sized to transit len)
                if bound < arr[pos] {
                    // lint:allow(bounds: pos enumerates transit and arr is sized to transit len)
                    arr[pos] = bound;
                }
            }
        }
        crate::invariants::margin_step(transit, arr.as_slice());
        let changed = self.margins.get(&dest) != Some(&arr);
        self.margins.insert(dest, arr);
        changed
    }

    fn advertisement_for(&self, dest: AsId) -> RouteInfo {
        match self.selector.selected(dest) {
            Some(route) => RouteInfo::Reachable {
                path: route.path.clone(),
                path_cost: route.cost,
                prices: self.margins.get(&dest).cloned().unwrap_or_default(),
            },
            None => RouteInfo::Withdrawn,
        }
    }

    fn emit(&mut self, dests: impl IntoIterator<Item = AsId>) -> Option<Update> {
        let mut ads = Vec::new();
        for dest in dests {
            let info = self.advertisement_for(dest);
            let changed = match self.advertised.get(&dest) {
                Some(prev) => *prev != info,
                None => !matches!(info, RouteInfo::Withdrawn),
            };
            if changed {
                // Margin-only movement on an unchanged path compresses to a
                // delta exactly like the base model's price relaxation.
                let wire_info = self
                    .advertised
                    .get(&dest)
                    .filter(|_| self.delta_encoding)
                    .and_then(|prev| RouteInfo::delta_from(prev, &info))
                    .unwrap_or_else(|| info.clone());
                self.advertised.insert(dest, info);
                ads.push(RouteAdvertisement {
                    destination: dest,
                    info: wire_info,
                });
            }
        }
        Update::if_nonempty(self.selector.id(), ads)
            .map(|u| u.with_sender_costs(self.vector.clone()))
    }
}

impl ProtocolNode for NcPricingNode {
    fn id(&self) -> AsId {
        self.selector.id()
    }

    fn configure_delta_encoding(&mut self, on: bool) {
        self.set_delta_encoding(on);
    }

    fn start(&mut self) -> Option<Update> {
        self.emit([self.selector.id()])
    }

    fn handle(&mut self, updates: &[Arc<Update>]) -> Option<Update> {
        let mut affected: BTreeSet<AsId> = BTreeSet::new();
        for update in updates {
            affected.extend(self.selector.ingest(update));
        }
        let mut out = BTreeSet::new();
        for &dest in &affected {
            let route_changed = self.selector.decide(dest);
            if self.refresh_margins(dest) || route_changed {
                out.insert(dest);
            }
        }
        self.emit(out)
    }

    fn apply_event(&mut self, event: LocalEvent) -> Option<Update> {
        match event {
            LocalEvent::LinkDown(neighbor) => {
                if !self.selector.has_neighbor(neighbor) {
                    return None;
                }
                // Only destinations the vanished Rib-In covered can change
                // (bounds and candidates for `dest` come exclusively from
                // rib entries for `dest`; a margin refresh recomputes from
                // scratch off the current Rib-In) — same argument as the
                // base `PricingBgpNode`.
                let affected = self.selector.rib_destinations(neighbor);
                self.selector.link_down(neighbor); // re-decides `affected`
                                                   // The dead link's entry leaves our declared vector; it is
                                                   // attached to whatever this emit (and later ones) sends.
                self.vector.retain(|&(a, _)| a != neighbor);
                for &dest in &affected {
                    self.refresh_margins(dest);
                }
                self.emit(affected)
            }
            LocalEvent::LinkUp(neighbor) => {
                self.selector.link_up(neighbor);
                None // the engine delivers full_table to the new neighbor
            }
            // A scalar cost change has no meaning in the per-neighbor
            // model; vector re-declarations are a static-model concern
            // (rebuild the node set for a new NeighborCostGraph instead).
            LocalEvent::CostChange(_) => None,
        }
    }

    fn full_table(&self) -> Option<Update> {
        let ads: Vec<RouteAdvertisement> = self
            .selector
            .destinations()
            .map(|dest| RouteAdvertisement {
                destination: dest,
                info: self.advertisement_for(dest),
            })
            .collect();
        Update::if_nonempty(self.selector.id(), ads)
            .map(|u| u.with_sender_costs(self.vector.clone()))
    }

    fn reset(&mut self) {
        // The declared vector is configuration, not learned state: a
        // restarted node still charges the same per-neighbor receive costs.
        self.selector.reset();
        self.margins.clear();
        self.advertised.clear();
    }

    fn state(&self) -> StateSnapshot {
        let mut snapshot = StateSnapshot::default();
        for dest in self.selector.destinations() {
            if let Some(route) = self.selector.selected(dest) {
                snapshot.table_entries += 1;
                snapshot.table_path_nodes += route.path.len();
            }
        }
        let neighbors: Vec<AsId> = self.selector.neighbors().collect();
        for a in neighbors {
            for dest in self.selector.destinations().collect::<Vec<_>>() {
                if let Some(info) = self.selector.rib(a, dest) {
                    snapshot.rib_entries += 1;
                    snapshot.rib_path_nodes += info.path().map_or(0, <[_]>::len);
                }
            }
        }
        // One margin per transit node of the selected route; a deployable
        // encoding labels each with that node's AS number (one cell each).
        snapshot.price_entries = self.margins.values().map(Vec::len).sum();
        snapshot.price_path_nodes = snapshot.price_entries;
        snapshot
    }
}

/// Runs the generalized pricing protocol to convergence on the synchronous
/// engine and extracts the outcome (directly comparable with
/// [`super::compute`]).
///
/// # Errors
///
/// Returns the graph-validation error if the topology violates the
/// mechanism's preconditions.
pub fn run_nc_sync(
    graph: &NeighborCostGraph,
) -> Result<(RoutingOutcome, RunReport), MechanismError> {
    graph.validate_for_mechanism()?;
    let mut engine = SyncEngine::new(graph.topology(), NcPricingNode::from_graph(graph));
    let report = engine.run_to_convergence();
    let outcome = outcome_from_nc_nodes(&engine.into_nodes())?;
    Ok((outcome, report))
}

/// Extracts the distributed state of converged NC nodes into a
/// [`RoutingOutcome`].
///
/// # Errors
///
/// Returns [`MechanismError::MissingPrice`] if a selected route carries a
/// transit node without a converged margin entry — i.e. the nodes were
/// read before the relaxation fixpoint was reached.
fn outcome_from_nc_nodes(nodes: &[NcPricingNode]) -> Result<RoutingOutcome, MechanismError> {
    let n = nodes.len();
    let mut pairs: Vec<Option<PairOutcome>> = vec![None; n * n];
    for node in nodes {
        let i = node.id();
        for j in node.selector().destinations().collect::<Vec<_>>() {
            if j == i {
                continue;
            }
            let Some(route) = node.selector().route(j) else {
                continue;
            };
            let mut prices = Vec::with_capacity(route.transit_nodes().len());
            for &k in route.transit_nodes() {
                let price = node.price(j, k).ok_or(MechanismError::MissingPrice {
                    source: i,
                    destination: j,
                    transit: k,
                })?;
                prices.push((k, price));
            }
            pairs[i.index() * n + j.index()] = Some(PairOutcome::new(route, prices));
        }
    }
    Ok(RoutingOutcome::from_pairs(n, pairs))
}

/// Runs the generalized pricing protocol on the asynchronous engine until
/// quiescence; the margin relaxation's fixpoint is unique, so the result
/// equals [`run_nc_sync`]'s (and [`super::compute`]'s) for any
/// interleaving.
///
/// # Errors
///
/// Returns the graph-validation error if the topology violates the
/// mechanism's preconditions.
pub fn run_nc_async(
    graph: &NeighborCostGraph,
) -> Result<(RoutingOutcome, bgpvcg_bgp::engine::EventReport), MechanismError> {
    graph.validate_for_mechanism()?;
    let (nodes, report) =
        bgpvcg_bgp::engine::run_event_driven(graph.topology(), NcPricingNode::from_graph(graph));
    Ok((outcome_from_nc_nodes(&nodes)?, report))
}

#[cfg(test)]
mod tests {
    use super::super::mechanism::compute;
    use super::*;
    use bgpvcg_bgp::TopologyEvent;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_nc_graph(n: usize, seed: u64) -> NeighborCostGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = erdos_renyi(random_costs(n, 0, 9, &mut rng), 0.3, &mut rng);
        let mut g = NeighborCostGraph::uniform(&base);
        for k in base.nodes() {
            for &a in base.neighbors(k) {
                g = g
                    .with_recv_cost(k, a, Cost::new(rng.gen_range(0..10)))
                    .unwrap();
            }
        }
        g
    }

    #[test]
    fn distributed_equals_centralized_on_uniform_fig1() {
        let g = NeighborCostGraph::uniform(&fig1());
        let (outcome, report) = run_nc_sync(&g).unwrap();
        assert!(report.converged);
        assert_eq!(outcome, compute(&g).unwrap());
        // ... and therefore also equals the base mechanism.
        assert_eq!(outcome, crate::vcg::compute(&fig1()).unwrap());
    }

    #[test]
    fn distributed_equals_centralized_on_heterogeneous_links() {
        for seed in 0..6 {
            let g = random_nc_graph(14, 200 + seed);
            let (outcome, report) = run_nc_sync(&g).unwrap();
            assert!(report.converged, "seed {seed}");
            assert_eq!(outcome, compute(&g).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn expensive_link_repricing_matches_centralized() {
        let g = NeighborCostGraph::uniform(&fig1())
            .with_recv_cost(Fig1::D, Fig1::B, Cost::new(2))
            .unwrap();
        let (outcome, _) = run_nc_sync(&g).unwrap();
        assert_eq!(outcome, compute(&g).unwrap());
        let pair = outcome.pair(Fig1::X, Fig1::Z).unwrap();
        assert_eq!(pair.price_of(Fig1::D), Some(Cost::new(3)));
        assert_eq!(pair.price_of(Fig1::B), Some(Cost::new(3)));
    }

    #[test]
    fn link_failure_reconverges_to_centralized() {
        let g = random_nc_graph(12, 300);
        let mut engine = SyncEngine::new(g.topology(), NcPricingNode::from_graph(&g));
        engine.run_to_convergence();
        // Find a removable link that keeps the topology biconnected.
        let link = g
            .topology()
            .links()
            .iter()
            .find(|l| {
                g.topology()
                    .without_link(l.a(), l.b())
                    .is_ok_and(|t| t.is_biconnected())
            })
            .copied()
            .expect("a removable link exists");
        let report = engine.apply_event(TopologyEvent::LinkDown(link.a(), link.b()));
        assert!(report.converged);

        // The expected state: the NC graph on the reduced topology.
        let mut b = NeighborCostGraph::builder();
        for _ in g.nodes() {
            b.add_node();
        }
        for l in g.topology().links() {
            if *l == link {
                continue;
            }
            b.add_link(
                l.a(),
                l.b(),
                g.recv_cost(l.a(), l.b()),
                g.recv_cost(l.b(), l.a()),
            );
        }
        let reduced = b.build().unwrap();
        let reference = compute(&reduced).unwrap();

        let nodes = engine.into_nodes();
        for node in &nodes {
            let i = node.id();
            for j in g.nodes() {
                if i == j {
                    continue;
                }
                let route = node.selector().route(j).expect("still biconnected");
                let expected_pair = reference.pair(i, j).unwrap();
                assert_eq!(&route, expected_pair.route(), "{i}->{j} route");
                for &(k, p) in expected_pair.prices() {
                    assert_eq!(node.price(j, k), Some(p), "{i}->{j} price of {k}");
                }
            }
        }
    }

    #[test]
    fn run_nc_async_matches_centralized() {
        let g = random_nc_graph(12, 500);
        let reference = compute(&g).unwrap();
        let (outcome, report) = run_nc_async(&g).unwrap();
        assert!(report.messages > 0);
        assert_eq!(outcome, reference);
    }

    #[test]
    fn async_engine_matches_centralized_nc() {
        // The asynchronous engine is generic over ProtocolNode, so the
        // generalized pricing node runs on it unchanged; the margin
        // relaxation must reach the same unique fixpoint under arbitrary
        // interleavings.
        use bgpvcg_bgp::engine::run_event_driven;
        let g = random_nc_graph(12, 400);
        let reference = compute(&g).unwrap();
        for _ in 0..2 {
            let (nodes, _) = run_event_driven(g.topology(), NcPricingNode::from_graph(&g));
            for node in &nodes {
                let i = node.id();
                for j in g.nodes() {
                    if i == j {
                        continue;
                    }
                    let pair = reference.pair(i, j).unwrap();
                    assert_eq!(
                        node.selector().route(j).as_ref(),
                        Some(pair.route()),
                        "{i}->{j} route"
                    );
                    for &(k, price) in pair.prices() {
                        assert_eq!(node.price(j, k), Some(price), "{i}->{j} price of {k}");
                    }
                }
            }
        }
    }

    #[test]
    fn price_uses_predecessor_specific_cost() {
        // Asymmetric: D's B-facing link costs 4, its Y-facing link 1.
        let g = NeighborCostGraph::uniform(&fig1())
            .with_recv_cost(Fig1::D, Fig1::B, Cost::new(4))
            .unwrap();
        let (outcome, _) = run_nc_sync(&g).unwrap();
        assert_eq!(outcome, compute(&g).unwrap());
        // Y->Z still goes Y D Z with D's Y-facing cost (1)...
        let yz = outcome.pair(Fig1::Y, Fig1::Z).unwrap();
        assert_eq!(yz.route().nodes(), &[Fig1::Y, Fig1::D, Fig1::Z]);
        // ...while X->Z now weighs D at 4 via B: X B D Z costs 2+4=6 > 5,
        // so the LCP flips to X A Z.
        let xz = outcome.pair(Fig1::X, Fig1::Z).unwrap();
        assert_eq!(xz.route().nodes(), &[Fig1::X, Fig1::A, Fig1::Z]);
    }
}
