//! AS graphs with per-neighbor (receive-side) transit costs.

use bgpvcg_netgraph::{AsGraph, AsId, Cost, GraphError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An AS graph in the generalized cost model: node `k` declares, for each
/// adjacent link, the per-packet cost of carrying a transit packet
/// *received over* that link.
///
/// The topology (and its biconnectivity machinery) is borrowed from
/// [`AsGraph`]; the node-uniform costs stored there are ignored in favour
/// of the per-neighbor table.
///
/// # Example
///
/// ```
/// use bgpvcg_core::neighbor_costs::NeighborCostGraph;
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_netgraph::Cost;
///
/// // Uniform per-neighbor costs reduce to the base model...
/// let g = NeighborCostGraph::uniform(&fig1());
/// assert_eq!(g.recv_cost(Fig1::D, Fig1::B), Cost::new(1));
/// // ...and individual links can then be re-priced.
/// let g = g.with_recv_cost(Fig1::D, Fig1::B, Cost::new(7)).unwrap();
/// assert_eq!(g.recv_cost(Fig1::D, Fig1::B), Cost::new(7));
/// assert_eq!(g.recv_cost(Fig1::D, Fig1::Y), Cost::new(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborCostGraph {
    topology: AsGraph,
    /// `recv_costs[k][from]`: cost node `k` incurs per transit packet
    /// received from neighbor `from`. One entry per adjacency.
    recv_costs: Vec<BTreeMap<AsId, Cost>>,
}

impl NeighborCostGraph {
    /// Starts building a graph from scratch.
    pub fn builder() -> NeighborCostGraphBuilder {
        NeighborCostGraphBuilder::default()
    }

    /// Lifts a node-uniform graph into the generalized model: every link of
    /// node `k` receives cost `c_k`. The generalized mechanism on this
    /// graph coincides with the base mechanism on the original.
    pub fn uniform(base: &AsGraph) -> Self {
        let recv_costs = base
            .nodes()
            .map(|k| {
                base.neighbors(k)
                    .iter()
                    .map(|&a| (a, base.cost(k)))
                    .collect()
            })
            .collect();
        NeighborCostGraph {
            topology: base.clone(),
            recv_costs,
        }
    }

    /// The underlying topology (node-uniform costs therein are unused).
    pub fn topology(&self) -> &AsGraph {
        &self.topology
    }

    /// Number of ASs.
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    /// Iterates over all AS numbers.
    pub fn nodes(&self) -> impl Iterator<Item = AsId> + '_ {
        self.topology.nodes()
    }

    /// Neighbors of `k`, ascending.
    pub fn neighbors(&self, k: AsId) -> &[AsId] {
        self.topology.neighbors(k)
    }

    /// The cost node `k` incurs for a transit packet received from
    /// neighbor `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a neighbor of `k`.
    pub fn recv_cost(&self, k: AsId, from: AsId) -> Cost {
        *self.recv_costs[k.index()]
            .get(&from)
            .unwrap_or_else(|| panic!("{from} is not a neighbor of {k}")) // lint:allow(documented # Panics contract: non-neighbor lookup is a caller bug)
    }

    /// The full declared cost vector of node `k`: `(neighbor, cost)` pairs
    /// in ascending neighbor order — the node's *type* in the mechanism.
    pub fn cost_vector(&self, k: AsId) -> Vec<(AsId, Cost)> {
        self.recv_costs[k.index()]
            .iter()
            .map(|(&a, &c)| (a, c))
            .collect()
    }

    /// A copy with one link's receive cost changed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `from` is not a neighbor of
    /// `k` (or either node is absent).
    pub fn with_recv_cost(&self, k: AsId, from: AsId, cost: Cost) -> Result<Self, GraphError> {
        if !self.topology.contains_node(k) {
            return Err(GraphError::UnknownNode(k));
        }
        if !self.topology.has_link(k, from) {
            return Err(GraphError::UnknownNode(from));
        }
        let mut clone = self.clone();
        clone.recv_costs[k.index()].insert(from, cost);
        Ok(clone)
    }

    /// A copy with node `k`'s entire declared vector replaced — the
    /// deviation move in the generalized game.
    ///
    /// # Panics
    ///
    /// Panics if the vector does not cover exactly `k`'s neighbors.
    pub fn with_cost_vector(&self, k: AsId, vector: &[(AsId, Cost)]) -> Self {
        let expected: Vec<AsId> = self.neighbors(k).to_vec();
        let provided: Vec<AsId> = vector.iter().map(|&(a, _)| a).collect();
        assert_eq!(
            provided, expected,
            "vector must cover exactly the neighbors of {k}"
        );
        let mut clone = self.clone();
        clone.recv_costs[k.index()] = vector.iter().copied().collect();
        clone
    }

    /// Validates the mechanism preconditions (size, connectivity,
    /// biconnectivity) — identical to the base model's.
    ///
    /// # Errors
    ///
    /// See [`AsGraph::validate_for_mechanism`].
    pub fn validate_for_mechanism(&self) -> Result<(), GraphError> {
        self.topology.validate_for_mechanism()
    }
}

impl fmt::Display for NeighborCostGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "NeighborCostGraph: {} nodes, {} links",
            self.node_count(),
            self.topology.link_count()
        )?;
        for k in self.nodes() {
            let costs: Vec<String> = self
                .cost_vector(k)
                .iter()
                .map(|(a, c)| format!("{a}:{c}"))
                .collect();
            writeln!(f, "  {k} <- [{}]", costs.join(", "))?;
        }
        Ok(())
    }
}

/// Builder for [`NeighborCostGraph`].
#[derive(Debug, Clone, Default)]
pub struct NeighborCostGraphBuilder {
    nodes: usize,
    links: Vec<(AsId, AsId, Cost, Cost)>,
}

impl NeighborCostGraphBuilder {
    /// Adds a node, returning its AS number.
    pub fn add_node(&mut self) -> AsId {
        let id = AsId::new(self.nodes as u32);
        self.nodes += 1;
        id
    }

    /// Adds a link; `cost_at_a` is what `a` incurs receiving from `b`, and
    /// `cost_at_b` what `b` incurs receiving from `a`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`bgpvcg_netgraph::AsGraphBuilder::add_link`]
    /// (validated at [`build`](Self::build)).
    pub fn add_link(&mut self, a: AsId, b: AsId, cost_at_a: Cost, cost_at_b: Cost) -> &mut Self {
        self.links.push((a, b, cost_at_a, cost_at_b));
        self
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns the first link-validation error (unknown node, self-loop,
    /// duplicate).
    pub fn build(self) -> Result<NeighborCostGraph, GraphError> {
        let mut topo = AsGraph::builder();
        for _ in 0..self.nodes {
            topo.add_node(Cost::ZERO);
        }
        for &(a, b, _, _) in &self.links {
            topo.add_link(a, b)?;
        }
        let topology = topo.build();
        let mut recv_costs: Vec<BTreeMap<AsId, Cost>> = vec![BTreeMap::new(); self.nodes];
        for (a, b, cost_at_a, cost_at_b) in self.links {
            recv_costs[a.index()].insert(b, cost_at_a);
            recv_costs[b.index()].insert(a, cost_at_b);
        }
        Ok(NeighborCostGraph {
            topology,
            recv_costs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};

    #[test]
    fn uniform_lift_copies_node_costs() {
        let base = fig1();
        let g = NeighborCostGraph::uniform(&base);
        for k in base.nodes() {
            for &a in base.neighbors(k) {
                assert_eq!(g.recv_cost(k, a), base.cost(k));
            }
        }
        assert!(g.validate_for_mechanism().is_ok());
    }

    #[test]
    fn cost_vector_covers_neighbors() {
        let g = NeighborCostGraph::uniform(&fig1());
        let v = g.cost_vector(Fig1::D);
        let neighbors: Vec<AsId> = v.iter().map(|&(a, _)| a).collect();
        assert_eq!(neighbors, g.neighbors(Fig1::D));
    }

    #[test]
    fn with_recv_cost_changes_one_direction() {
        let g = NeighborCostGraph::uniform(&fig1());
        let g2 = g.with_recv_cost(Fig1::D, Fig1::B, Cost::new(9)).unwrap();
        assert_eq!(g2.recv_cost(Fig1::D, Fig1::B), Cost::new(9));
        assert_eq!(
            g2.recv_cost(Fig1::B, Fig1::D),
            Cost::new(2),
            "other side untouched"
        );
        assert!(
            g.with_recv_cost(Fig1::D, Fig1::A, Cost::ZERO).is_err(),
            "not adjacent"
        );
    }

    #[test]
    fn with_cost_vector_replaces_type() {
        let g = NeighborCostGraph::uniform(&fig1());
        let mut v = g.cost_vector(Fig1::D);
        for (_, c) in &mut v {
            *c = Cost::new(5);
        }
        let g2 = g.with_cost_vector(Fig1::D, &v);
        for &a in g2.neighbors(Fig1::D) {
            assert_eq!(g2.recv_cost(Fig1::D, a), Cost::new(5));
        }
    }

    #[test]
    #[should_panic(expected = "cover exactly the neighbors")]
    fn with_cost_vector_rejects_wrong_shape() {
        let g = NeighborCostGraph::uniform(&fig1());
        g.with_cost_vector(Fig1::D, &[(Fig1::A, Cost::ZERO)]);
    }

    #[test]
    fn builder_constructs_asymmetric_costs() {
        let mut b = NeighborCostGraph::builder();
        let x = b.add_node();
        let y = b.add_node();
        let z = b.add_node();
        b.add_link(x, y, Cost::new(1), Cost::new(2));
        b.add_link(y, z, Cost::new(3), Cost::new(4));
        b.add_link(z, x, Cost::new(5), Cost::new(6));
        let g = b.build().unwrap();
        assert_eq!(g.recv_cost(x, y), Cost::new(1));
        assert_eq!(g.recv_cost(y, x), Cost::new(2));
        assert_eq!(g.recv_cost(y, z), Cost::new(3));
        assert_eq!(g.recv_cost(z, y), Cost::new(4));
        assert_eq!(g.recv_cost(z, x), Cost::new(5));
        assert_eq!(g.recv_cost(x, z), Cost::new(6));
        assert!(g.validate_for_mechanism().is_ok());
    }

    #[test]
    fn builder_rejects_duplicate_links() {
        let mut b = NeighborCostGraph::builder();
        let x = b.add_node();
        let y = b.add_node();
        b.add_link(x, y, Cost::ZERO, Cost::ZERO);
        b.add_link(y, x, Cost::ZERO, Cost::ZERO);
        assert!(b.build().is_err());
    }

    #[test]
    fn display_lists_cost_vectors() {
        let g = NeighborCostGraph::uniform(&fig1());
        let text = g.to_string();
        assert!(text.contains("AS3"));
        assert!(text.contains("<-"));
    }
}
