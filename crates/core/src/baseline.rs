//! The predecessors the paper contrasts itself with.
//!
//! * [`single_pair_node_vcg`] — the centralized, single-pair, node-agent
//!   mechanism: what running the paper's mechanism "one instance at a time"
//!   looks like. Mathematically it agrees with the all-pairs mechanism on
//!   each pair; computationally it is the `n²`-invocation baseline whose
//!   scaling experiment E9 measures against the distributed protocol.
//! * [`EdgeWeightedGraph`] / [`edge_vcg`] — Nisan–Ronen's original LCP
//!   mechanism, in which the *links* are the strategic agents and each
//!   link is paid `d_{G | c_e = ∞} − d_{G | c_e = 0}`. Included because the
//!   paper positions its node-agent formulation as the realistic
//!   replacement for this model.

use crate::vcg;
use bgpvcg_netgraph::{AsGraph, AsId, Cost, GraphError};
use std::collections::BinaryHeap;

/// Prices for the transit nodes of one source–destination pair, computed by
/// a fresh centralized single-pair run (the [12, 16] computational model).
///
/// # Errors
///
/// Returns the graph-validation error if the graph violates the mechanism's
/// preconditions.
///
/// # Example
///
/// ```
/// use bgpvcg_core::baseline::single_pair_node_vcg;
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_netgraph::Cost;
///
/// # fn main() -> Result<(), bgpvcg_netgraph::GraphError> {
/// let prices = single_pair_node_vcg(&fig1(), Fig1::X, Fig1::Z)?;
/// assert_eq!(prices, vec![(Fig1::B, Cost::new(4)), (Fig1::D, Cost::new(3))]);
/// # Ok(())
/// # }
/// ```
pub fn single_pair_node_vcg(
    graph: &AsGraph,
    source: AsId,
    destination: AsId,
) -> Result<Vec<(AsId, Cost)>, GraphError> {
    graph.validate_for_mechanism()?;
    let tree = bgpvcg_lcp::shortest_tree(graph, destination);
    let Some(route) = tree.route(source) else {
        return Ok(Vec::new());
    };
    let lcp_cost = route.transit_cost();
    let mut prices = Vec::new();
    for &k in route.transit_nodes() {
        let avoiding = bgpvcg_lcp::avoiding::avoiding_tree(graph, destination, k);
        let avoid_cost = avoiding.cost(source);
        let margin = avoid_cost
            .checked_sub(lcp_cost)
            .ok_or(GraphError::NotBiconnected)?;
        prices.push((k, graph.cost(k) + margin));
    }
    Ok(prices)
}

/// A small undirected graph with costs on the *edges* — the input model of
/// Nisan–Ronen's LCP mechanism, where edges are the strategic agents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeWeightedGraph {
    n: usize,
    /// `(u, v, cost)`, normalized `u < v`.
    edges: Vec<(usize, usize, u64)>,
}

impl EdgeWeightedGraph {
    /// Builds a graph on `n` nodes from an edge list.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    pub fn new(n: usize, edges: &[(usize, usize, u64)]) -> Self {
        let mut normalized = Vec::with_capacity(edges.len());
        for &(u, v, c) in edges {
            assert!(u != v, "self-loop");
            assert!(u < n && v < n, "endpoint out of range");
            let e = (u.min(v), u.max(v), c);
            assert!(
                !normalized.iter().any(|&(a, b, _)| (a, b) == (e.0, e.1)),
                "duplicate edge"
            );
            normalized.push(e);
        }
        EdgeWeightedGraph {
            n,
            edges: normalized,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Shortest-path distance from `s` to `t` with edge `skip` (by index)
    /// either removed (`replace = None`) or re-weighted (`replace =
    /// Some(c)`); `None` overall if disconnected.
    fn distance(&self, s: usize, t: usize, skip: Option<(usize, Option<u64>)>) -> Option<u64> {
        let mut adjacency: Vec<Vec<(usize, u64)>> = vec![Vec::new(); self.n];
        for (idx, &(u, v, c)) in self.edges.iter().enumerate() {
            let cost = match skip {
                Some((e, replacement)) if e == idx => match replacement {
                    Some(c2) => c2,
                    None => continue, // removed
                },
                _ => c,
            };
            adjacency[u].push((v, cost));
            adjacency[v].push((u, cost));
        }
        let mut dist = vec![u64::MAX; self.n];
        dist[s] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, s)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == t {
                return Some(d);
            }
            for &(v, c) in &adjacency[u] {
                let nd = d.saturating_add(c);
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        None
    }

    /// The shortest `s`–`t` distance, if connected.
    pub fn shortest_distance(&self, s: usize, t: usize) -> Option<u64> {
        self.distance(s, t, None)
    }
}

/// One edge's VCG payment in the Nisan–Ronen mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgePayment {
    /// Edge endpoints (normalized `u < v`).
    pub edge: (usize, usize),
    /// Declared cost of the edge.
    pub declared: u64,
    /// The VCG payment `d_{G|e=∞} − d_{G|e=0}`; zero for edges off every
    /// shortest path.
    pub payment: u64,
}

/// Computes Nisan–Ronen edge payments for a single `s`–`t` instance.
///
/// The mechanism: an edge `e` on the selected shortest path is paid
/// `d_{G | c_e = ∞} − d_{G | c_e = 0}`; every other edge is paid nothing.
/// The graph must be 2-edge-connected between `s` and `t` or a shortest-path
/// edge would have an undefined (monopoly) payment.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if `t` is unreachable from `s`, and
/// [`GraphError::NotBiconnected`] if removing some shortest-path edge
/// disconnects the pair.
pub fn edge_vcg(
    graph: &EdgeWeightedGraph,
    s: usize,
    t: usize,
) -> Result<Vec<EdgePayment>, GraphError> {
    let base = graph
        .shortest_distance(s, t)
        .ok_or(GraphError::Disconnected)?;
    let mut payments = Vec::new();
    for (idx, &(u, v, c)) in graph.edges.iter().enumerate() {
        // e is on SOME shortest path iff zeroing it shortens the distance
        // below the base by exactly c... the standard membership test:
        let with_zero = graph
            .distance(s, t, Some((idx, Some(0))))
            .ok_or(GraphError::Disconnected)?;
        let on_shortest_path = with_zero + c == base;
        let payment = if on_shortest_path {
            let without = graph
                .distance(s, t, Some((idx, None)))
                .ok_or(GraphError::NotBiconnected)?;
            without - with_zero
        } else {
            0
        };
        payments.push(EdgePayment {
            edge: (u, v),
            declared: c,
            payment,
        });
    }
    Ok(payments)
}

/// Convenience check used by E9: the single-pair mechanism run on every
/// pair agrees with the all-pairs mechanism (they are the same mathematical
/// object computed two ways).
///
/// # Errors
///
/// Returns the graph-validation error if the graph violates the mechanism's
/// preconditions.
pub fn all_pairs_via_single_pair_matches(graph: &AsGraph) -> Result<bool, GraphError> {
    let reference = vcg::compute(graph)?;
    for i in graph.nodes() {
        for j in graph.nodes() {
            if i == j {
                continue;
            }
            let single = single_pair_node_vcg(graph, i, j)?;
            let expected: Vec<(AsId, Cost)> = reference
                .pair(i, j)
                .map(|p| p.prices().to_vec())
                .unwrap_or_default();
            if single != expected {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_pair_matches_paper_example() {
        let prices = single_pair_node_vcg(&fig1(), Fig1::X, Fig1::Z).unwrap();
        assert_eq!(
            prices,
            vec![(Fig1::B, Cost::new(4)), (Fig1::D, Cost::new(3))]
        );
    }

    #[test]
    fn single_pair_agrees_with_all_pairs_mechanism() {
        let mut rng = StdRng::seed_from_u64(1);
        let costs = random_costs(10, 0, 7, &mut rng);
        let g = erdos_renyi(costs, 0.4, &mut rng);
        assert!(all_pairs_via_single_pair_matches(&g).unwrap());
    }

    #[test]
    fn edge_graph_construction_and_distance() {
        let g = EdgeWeightedGraph::new(4, &[(0, 1, 2), (1, 2, 3), (0, 2, 10), (2, 3, 1)]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.shortest_distance(0, 3), Some(6)); // 0-1-2-3
        assert_eq!(g.shortest_distance(3, 0), Some(6));
    }

    #[test]
    fn edge_vcg_on_two_parallel_paths() {
        // s=0, t=1 via direct edge (cost 3) or via node 2 (cost 2+2=4).
        let g = EdgeWeightedGraph::new(3, &[(0, 1, 3), (0, 2, 2), (2, 1, 2)]);
        let payments = edge_vcg(&g, 0, 1).unwrap();
        let direct = payments.iter().find(|p| p.edge == (0, 1)).unwrap();
        // Without the direct edge: 4; with it zeroed: 0. Payment 4.
        assert_eq!(direct.payment, 4);
        for p in payments.iter().filter(|p| p.edge != (0, 1)) {
            assert_eq!(p.payment, 0, "off-path edges are paid nothing");
        }
    }

    #[test]
    fn edge_vcg_payment_at_least_declared_cost() {
        // Strategyproof individual rationality: payment ≥ declared cost for
        // on-path edges.
        let g = EdgeWeightedGraph::new(
            5,
            &[
                (0, 1, 1),
                (1, 4, 2),
                (0, 2, 2),
                (2, 4, 3),
                (0, 3, 5),
                (3, 4, 5),
            ],
        );
        let payments = edge_vcg(&g, 0, 4).unwrap();
        let on_path: Vec<_> = payments.iter().filter(|p| p.payment > 0).collect();
        assert!(!on_path.is_empty());
        for p in on_path {
            assert!(p.payment >= p.declared, "{p:?}");
        }
    }

    #[test]
    fn edge_vcg_detects_monopoly() {
        // A bridge edge has no alternative: the mechanism must refuse.
        let g = EdgeWeightedGraph::new(3, &[(0, 1, 1), (1, 2, 1)]);
        assert_eq!(edge_vcg(&g, 0, 2).unwrap_err(), GraphError::NotBiconnected);
    }

    #[test]
    fn edge_vcg_disconnected_pair() {
        let g = EdgeWeightedGraph::new(4, &[(0, 1, 1), (2, 3, 1)]);
        assert_eq!(edge_vcg(&g, 0, 3).unwrap_err(), GraphError::Disconnected);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn edge_graph_rejects_duplicates() {
        let _ = EdgeWeightedGraph::new(3, &[(0, 1, 1), (1, 0, 2)]);
    }
}
