//! Cross-engine telemetry equivalence on the paper's Fig. 1.
//!
//! The two engines schedule message deliveries completely differently, so
//! the *trajectories* of price relaxation (how many intermediate values a
//! `p^k_ij` cell passes through, and at what stage) are legitimately
//! schedule-dependent. What the mechanism guarantees — and what these tests
//! pin — is the *fixpoint projection*: for every `(node, dest, k)` cell,
//! the last `PriceRelaxed.new` value both engines trace is the same, and it
//! equals the converged Theorem-1 price.

use bgpvcg_core::telemetry::metric as vcg_metric;
use bgpvcg_core::{protocol, vcg};
use bgpvcg_netgraph::generators::structured::fig1;
use bgpvcg_netgraph::AsId;
use bgpvcg_telemetry::{Telemetry, TraceEvent, INFINITE};
use std::collections::BTreeMap;

/// Last traced value per `(node, dest, k)` cell, plus chain coherence: each
/// cell's events must form a strictly improving chain starting at `∞`
/// (`old₀ = ∞`, `oldᵢ₊₁ = newᵢ`, values strictly decreasing) — the paper's
/// "prices relax monotonically downward from ∞".
fn fixpoint_projection(events: &[TraceEvent]) -> BTreeMap<(u32, u32, u32), u64> {
    let mut last: BTreeMap<(u32, u32, u32), u64> = BTreeMap::new();
    for event in events {
        if let TraceEvent::PriceRelaxed {
            node,
            dest,
            k,
            old,
            new,
            ..
        } = event
        {
            let key = (*node, *dest, *k);
            let expected_old = last.get(&key).copied().unwrap_or(INFINITE);
            assert_eq!(
                *old, expected_old,
                "cell {key:?}: relaxation chain must link old to previous new"
            );
            assert!(
                *new < *old,
                "cell {key:?}: prices only relax downward ({old} -> {new})"
            );
            last.insert(key, *new);
        }
    }
    last
}

#[test]
fn sync_and_event_price_relaxations_project_to_the_same_fixpoint() {
    let g = fig1();

    let (sync_tel, sync_ring) = Telemetry::ring(1 << 16);
    let sync_run = protocol::run_sync_telemetry(&g, &sync_tel).unwrap();
    assert!(sync_run.report.converged);
    let sync_prices = fixpoint_projection(&sync_ring.events());

    let (event_tel, event_ring) = Telemetry::ring(1 << 16);
    let (event_outcome, _) = protocol::run_async_telemetry(&g, &event_tel).unwrap();
    let event_prices = fixpoint_projection(&event_ring.events());

    assert_eq!(
        sync_prices, event_prices,
        "both engines must relax every price cell to the same fixpoint"
    );
    assert_eq!(sync_run.outcome, event_outcome);

    // The traced fixpoint is the converged Theorem-1 price table: every
    // extracted finite price appears as some cell's final traced value.
    let reference = vcg::compute(&g).unwrap();
    let n = g.node_count();
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            let Some(pair) = reference.pair(AsId::new(i), AsId::new(j)) else {
                continue;
            };
            for &(k, price) in pair.prices() {
                assert_eq!(
                    sync_prices.get(&(i, j, k.raw())).copied(),
                    price.finite(),
                    "traced fixpoint for ({i} -> {j} via {k})"
                );
            }
        }
    }
}

#[test]
fn extraction_counters_record_the_outcome_shape() {
    let g = fig1();
    let telemetry = Telemetry::null();
    let run = protocol::run_sync_telemetry(&g, &telemetry).unwrap();
    let snap = telemetry.snapshot();
    let n = g.node_count();
    // Fig. 1 is biconnected: every ordered pair routes.
    assert_eq!(
        snap.counters[vcg_metric::PAIRS_EXTRACTED],
        (n * (n - 1)) as u64
    );
    let price_entries: u64 = (0..n as u32)
        .flat_map(|i| (0..n as u32).map(move |j| (i, j)))
        .filter_map(|(i, j)| run.outcome.pair(AsId::new(i), AsId::new(j)))
        .map(|pair| pair.prices().len() as u64)
        .sum();
    assert_eq!(
        snap.counters[vcg_metric::PRICE_ENTRIES_EXTRACTED],
        price_entries
    );
}

#[test]
fn settlement_and_sweep_wrappers_record_their_volume() {
    use bgpvcg_core::accounting::PaymentLedger;
    use bgpvcg_core::strategy;
    use bgpvcg_netgraph::TrafficMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let g = fig1();
    let telemetry = Telemetry::null();
    let outcome = vcg::compute(&g).unwrap();
    let traffic = TrafficMatrix::uniform(g.node_count(), 2);
    let ledger = PaymentLedger::settle_with_telemetry(&outcome, &traffic, &telemetry).unwrap();
    assert_eq!(
        ledger,
        PaymentLedger::settle(&outcome, &traffic).unwrap(),
        "telemetry wrapper must not change settlement"
    );
    let snap = telemetry.snapshot();
    assert_eq!(
        snap.counters[vcg_metric::FLOWS_SETTLED],
        traffic.flows().count() as u64
    );
    assert_eq!(
        snap.counters[vcg_metric::PAYMENTS_SETTLED],
        u64::try_from(ledger.total_payments()).unwrap()
    );

    let mut rng = StdRng::seed_from_u64(5);
    let outcomes =
        strategy::sweep_deviations_telemetry(&g, &traffic, 2, 10, &mut rng, &telemetry).unwrap();
    let snap = telemetry.snapshot();
    assert_eq!(
        snap.counters[vcg_metric::DEVIATIONS_EVALUATED],
        outcomes.len() as u64
    );
    assert_eq!(
        snap.counters[vcg_metric::PROFITABLE_DEVIATIONS],
        0,
        "Theorem 1: no deviation is profitable"
    );
}
