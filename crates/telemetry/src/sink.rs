//! Trace sinks: where event streams go.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// A consumer of trace events. Sinks take `&self` so one sink can be shared
/// by every node of a multi-threaded engine; implementations synchronize
/// internally.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Records one event. Sinks must preserve the order of `record` calls
    /// made by a single thread.
    fn record(&self, event: &TraceEvent);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&self) {}
}

/// Discards every event — the zero-cost default when only metrics matter.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &TraceEvent) {}
}

/// Writes one JSON object per line to an arbitrary writer (file, pipe,
/// in-memory buffer).
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<BufWriter<W>>,
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
        }
    }
}

impl JsonlSink<File> {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(File::create(path)?))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent) {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // Trace output is advisory; a full disk must not take the protocol
        // run down with it.
        let _ = writeln!(writer, "{}", event.to_json());
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writer.flush();
    }
}

/// Keeps the most recent `capacity` events in memory — the sink tests and
/// experiments read back from.
#[derive(Debug)]
pub struct RingBufferSink {
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    /// Total events ever recorded (including evicted ones).
    recorded: Mutex<u64>,
}

impl RingBufferSink {
    /// Creates a buffer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferSink {
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1 << 16))),
            capacity,
            recorded: Mutex::new(0),
        }
    }

    /// Copies out the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Total number of events ever recorded, including any that were
    /// evicted once the buffer filled.
    pub fn total_recorded(&self) -> u64 {
        *self.recorded.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, event: &TraceEvent) {
        let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
        *self.recorded.lock().unwrap_or_else(PoisonError::into_inner) += 1;
    }
}

/// Duplicates every event to two downstream sinks, in order — how one run
/// can stream JSONL to disk *and* keep an in-memory ring for analysis.
#[derive(Debug)]
pub struct TeeSink {
    first: std::sync::Arc<dyn TraceSink>,
    second: std::sync::Arc<dyn TraceSink>,
}

impl TeeSink {
    /// Creates a tee over two sinks. `record` hits `first` before `second`.
    pub fn new(
        first: std::sync::Arc<dyn TraceSink>,
        second: std::sync::Arc<dyn TraceSink>,
    ) -> Self {
        TeeSink { first, second }
    }
}

impl TraceSink for TeeSink {
    fn record(&self, event: &TraceEvent) {
        self.first.record(event);
        self.second.record(event);
    }

    fn flush(&self) {
        self.first.flush();
        self.second.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::INFINITE;
    use std::sync::Arc;

    fn sample(stage: u64) -> TraceEvent {
        TraceEvent::PriceRelaxed {
            node: 1,
            dest: 2,
            k: 3,
            stage,
            old: INFINITE,
            new: stage,
            cause: 0,
            effect: stage,
        }
    }

    /// A writer handing every byte to a shared buffer, so tests can read
    /// back what the sink wrote.
    #[derive(Debug, Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event_in_order() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(buf.clone());
        for stage in 1..=3 {
            sink.record(&sample(stage));
        }
        sink.record(&TraceEvent::Quiescent {
            stage: 3,
            messages: 7,
        });
        sink.flush();
        let bytes = buf.0.lock().unwrap_or_else(PoisonError::into_inner).clone();
        let text = String::from_utf8(bytes).expect("valid utf-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for (idx, line) in lines.iter().take(3).enumerate() {
            assert_eq!(*line, sample(idx as u64 + 1).to_json(), "line {idx}");
        }
        assert!(lines[3].contains("\"type\":\"Quiescent\""));
        assert!(text.ends_with('\n'), "JSONL lines are newline-terminated");
    }

    #[test]
    fn ring_buffer_keeps_most_recent_events() {
        let sink = RingBufferSink::new(2);
        for stage in 1..=5 {
            sink.record(&sample(stage));
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage(), 4);
        assert_eq!(events[1].stage(), 5);
        assert_eq!(sink.total_recorded(), 5);
    }

    #[test]
    fn null_sink_swallows_everything() {
        let sink = NullSink;
        sink.record(&sample(1));
        sink.flush();
    }

    #[test]
    fn tee_sink_duplicates_to_both_branches() {
        let a = Arc::new(RingBufferSink::new(4));
        let b = Arc::new(RingBufferSink::new(4));
        let tee = TeeSink::new(
            Arc::clone(&a) as Arc<dyn TraceSink>,
            Arc::clone(&b) as Arc<dyn TraceSink>,
        );
        tee.record(&sample(1));
        tee.record(&sample(2));
        tee.flush();
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 2);
    }
}
