//! Hierarchical span profiler with a zero-allocation hot path.
//!
//! Answers "where does the stage time go" for the engines: every engine
//! phase is a pre-registered span (fixed ids in [`span`]), and
//! [`SpanProfiler::enter`] / [`SpanProfiler::exit`] touch only fixed-size
//! arrays — no allocation, no hashing — so the profiler can sit inside the
//! synchronous engine's per-stage hot loop without perturbing what it
//! measures. The `stage-alloc` lint scope table pins `enter`/`exit` to the
//! same no-allocation discipline as the engine hot loop itself.
//!
//! Exports (`docs/OBSERVABILITY.md` §profiler):
//!
//! * [`SpanProfiler::to_json`] — schema-pinned (`bgpvcg-profile-v1`)
//!   per-span `count` / `total_nanos` (inclusive) / `self_nanos`
//!   (exclusive of children).
//! * [`SpanProfiler::collapsed`] — collapsed-stack text
//!   (`parent;child self_nanos` per line), the input format flamegraph
//!   tools consume.
//!
//! Timestamps come from the caller (the engine reads its injectable
//! [`crate::Clock`]), so under a [`crate::ManualClock`] every duration is
//! deterministic — which is why profile *values* are timing-exempt in
//! comparisons while span *names and counts* are not.

/// Maximum number of registrable spans (fixed at compile time so the hot
/// path indexes arrays, never grows them).
pub const MAX_SPANS: usize = 16;

/// Maximum nesting depth tracked; deeper `enter`s are counted in
/// [`SpanProfiler::truncated`] and ignored.
pub const MAX_DEPTH: usize = 8;

/// Identifies a registered span; an index below [`MAX_SPANS`].
pub type SpanId = usize;

/// Well-known span ids for the engine phases this workspace instruments.
/// Pre-registered by [`SpanProfiler::engine`], in this order, so profiles
/// from any engine agree on ids and the trace `SpanSummary.span` field is
/// comparable across runs.
pub mod span {
    /// One synchronous stage (parent of the other engine spans).
    pub const STAGE: super::SpanId = 0;
    /// Route selection: delivering updates into nodes' route selectors.
    pub const ROUTE_SELECT: super::SpanId = 1;
    /// Price relaxation bookkeeping (shadow diffing advertised prices).
    pub const PRICE_RELAX: super::SpanId = 2;
    /// Wire-format v2 encode on the update fan-out path.
    pub const WIRE_ENCODE: super::SpanId = 3;
    /// Session upkeep: retransmit timers, acks, hold timers (chaos engine).
    pub const SESSION_RETRANSMIT: super::SpanId = 4;
    /// Online-audit shadow execution of accused nodes.
    pub const AUDIT_SHADOW: super::SpanId = 5;
    /// Byzantine adversary wire tap rewriting advertisements.
    pub const ADVERSARY_TAP: super::SpanId = 6;
    /// Streaming health-detector fold over the event stream.
    pub const HEALTH_FOLD: super::SpanId = 7;

    /// Names matching the ids above, exported in profile JSON.
    pub const NAMES: [&str; 8] = [
        "stage",
        "route-select",
        "price-relax",
        "wire-encode",
        "session-retransmit",
        "audit-shadow",
        "adversary-tap",
        "health-fold",
    ];
}

/// Fixed-capacity hierarchical span profiler. See the module docs.
#[derive(Debug, Clone)]
pub struct SpanProfiler {
    names: [&'static str; MAX_SPANS],
    registered: usize,
    count: [u64; MAX_SPANS],
    total: [u64; MAX_SPANS],
    self_nanos: [u64; MAX_SPANS],
    /// `edge[parent][child]`: inclusive nanos of `child` spans entered
    /// while `parent` was the innermost open span — the tree behind
    /// [`SpanProfiler::collapsed`].
    edge: [[u64; MAX_SPANS]; MAX_SPANS],
    /// Inclusive nanos of spans closed with no parent open.
    root: [u64; MAX_SPANS],
    /// Open frames: (span id, start nanos, child nanos accumulated so far).
    stack: [(SpanId, u64, u64); MAX_DEPTH],
    depth: usize,
    /// `enter`s ignored because the stack was full (their matching `exit`s
    /// are swallowed too, keeping the stack balanced).
    overflow: usize,
    truncated: u64,
}

impl Default for SpanProfiler {
    fn default() -> Self {
        SpanProfiler::new()
    }
}

impl SpanProfiler {
    /// An empty profiler with no spans registered.
    pub fn new() -> Self {
        SpanProfiler {
            names: [""; MAX_SPANS],
            registered: 0,
            count: [0; MAX_SPANS],
            total: [0; MAX_SPANS],
            self_nanos: [0; MAX_SPANS],
            edge: [[0; MAX_SPANS]; MAX_SPANS],
            root: [0; MAX_SPANS],
            stack: [(0, 0, 0); MAX_DEPTH],
            depth: 0,
            overflow: 0,
            truncated: 0,
        }
    }

    /// A profiler with every engine phase of [`span`] pre-registered.
    pub fn engine() -> Self {
        let mut profiler = SpanProfiler::new();
        for name in span::NAMES {
            profiler.register(name);
        }
        profiler
    }

    /// Registers a span at setup time and returns its id. Not for the hot
    /// path.
    ///
    /// # Panics
    ///
    /// Panics when more than [`MAX_SPANS`] spans are registered.
    pub fn register(&mut self, name: &'static str) -> SpanId {
        assert!(self.registered < MAX_SPANS, "span table full");
        let id = self.registered;
        self.names[id] = name;
        self.registered += 1;
        id
    }

    /// Number of registered spans.
    pub fn registered(&self) -> usize {
        self.registered
    }

    /// The name a span id was registered under.
    pub fn name(&self, id: SpanId) -> &'static str {
        self.names[id]
    }

    /// Opens span `id` at `now` nanoseconds. Allocation-free.
    pub fn enter(&mut self, id: SpanId, now: u64) {
        debug_assert!(id < self.registered, "span id not registered");
        if self.depth == MAX_DEPTH {
            self.overflow += 1;
            self.truncated += 1;
            return;
        }
        // lint:allow(bounds: depth is kept strictly below MAX_DEPTH and stack is [_; MAX_DEPTH])
        self.stack[self.depth] = (id, now, 0);
        self.depth += 1;
    }

    /// Closes the innermost open span at `now` nanoseconds. Allocation-free.
    /// A no-op when nothing is open.
    pub fn exit(&mut self, now: u64) {
        if self.overflow > 0 {
            self.overflow -= 1;
            return;
        }
        if self.depth == 0 {
            return;
        }
        self.depth -= 1;
        // lint:allow(bounds: depth is kept strictly below MAX_DEPTH and stack is [_; MAX_DEPTH])
        let (id, start, child_nanos) = self.stack[self.depth];
        let elapsed = now.saturating_sub(start);
        // lint:allow(bounds: per-span arrays are sized `registered` and ids are registration-checked)
        self.count[id] += 1;
        // lint:allow(bounds: per-span arrays are sized `registered` and ids are registration-checked)
        self.total[id] = self.total[id].saturating_add(elapsed);
        let own = elapsed.saturating_sub(child_nanos);
        // lint:allow(bounds: per-span arrays are sized `registered` and ids are registration-checked)
        self.self_nanos[id] = self.self_nanos[id].saturating_add(own);
        if self.depth > 0 {
            // lint:allow(bounds: depth is kept strictly below MAX_DEPTH and stack is [_; MAX_DEPTH])
            let parent = self.stack[self.depth - 1].0;
            // lint:allow(bounds: depth is kept strictly below MAX_DEPTH and stack is [_; MAX_DEPTH])
            self.stack[self.depth - 1].2 = self.stack[self.depth - 1].2.saturating_add(elapsed);
            // lint:allow(bounds: per-span arrays are sized `registered` and ids are registration-checked)
            self.edge[parent][id] = self.edge[parent][id].saturating_add(elapsed);
        } else {
            // lint:allow(bounds: per-span arrays are sized `registered` and ids are registration-checked)
            self.root[id] = self.root[id].saturating_add(elapsed);
        }
    }

    /// Times spent in span `id`: `(count, total_nanos, self_nanos)`.
    pub fn stat(&self, id: SpanId) -> (u64, u64, u64) {
        // lint:allow(bounds: per-span arrays are sized `registered` and ids are registration-checked)
        (self.count[id], self.total[id], self.self_nanos[id])
    }

    /// How many `enter`s were dropped for exceeding [`MAX_DEPTH`].
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// One [`TraceEvent::SpanSummary`] per span with at least one
    /// completed interval, in span-id order, stamped with `stage` (the
    /// quiescence stage of the run being summarized). Totals are
    /// cumulative over the profiler's lifetime.
    pub fn summary_events(&self, stage: u64) -> Vec<crate::event::TraceEvent> {
        let mut out = Vec::new();
        for id in 0..self.registered {
            let (count, total_nanos, self_nanos) = self.stat(id);
            if count > 0 {
                out.push(crate::event::TraceEvent::SpanSummary {
                    stage,
                    span: id as u32,
                    count,
                    total_nanos,
                    self_nanos,
                });
            }
        }
        out
    }

    /// Folds `other`'s accumulated times into `self` so one profile can
    /// summarize a whole sweep. Both sides must have registered the same
    /// spans in the same order; open frames are not merged.
    ///
    /// # Panics
    ///
    /// Panics when the span tables differ.
    pub fn merge(&mut self, other: &SpanProfiler) {
        assert_eq!(
            self.names[..self.registered],
            other.names[..other.registered],
            "cannot merge profilers with different span tables"
        );
        for id in 0..self.registered {
            self.count[id] += other.count[id];
            self.total[id] = self.total[id].saturating_add(other.total[id]);
            self.self_nanos[id] = self.self_nanos[id].saturating_add(other.self_nanos[id]);
            self.root[id] = self.root[id].saturating_add(other.root[id]);
            for child in 0..self.registered {
                self.edge[id][child] = self.edge[id][child].saturating_add(other.edge[id][child]);
            }
        }
        self.truncated += other.truncated;
    }

    /// Schema-pinned profile JSON (`bgpvcg-profile-v1`): every registered
    /// span with its count, inclusive, and exclusive nanos, in
    /// registration order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.registered * 96);
        out.push_str("{\"version\":1,\"schema\":\"bgpvcg-profile-v1\",\"truncated\":");
        out.push_str(&self.truncated.to_string());
        out.push_str(",\"spans\":[");
        for id in 0..self.registered {
            if id > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            // lint:allow(bounds: per-span arrays are sized `registered` and ids are registration-checked)
            out.push_str(self.names[id]);
            out.push_str("\",\"count\":");
            // lint:allow(bounds: per-span arrays are sized `registered` and ids are registration-checked)
            out.push_str(&self.count[id].to_string());
            out.push_str(",\"total_nanos\":");
            // lint:allow(bounds: per-span arrays are sized `registered` and ids are registration-checked)
            out.push_str(&self.total[id].to_string());
            out.push_str(",\"self_nanos\":");
            // lint:allow(bounds: per-span arrays are sized `registered` and ids are registration-checked)
            out.push_str(&self.self_nanos[id].to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Collapsed-stack text for flamegraph tools: one
    /// `path;to;span self_nanos` line per observed stack, derived from the
    /// parent→child edge matrix. Engine spans occur in a single parent
    /// context each, so global self-time attribution per path is exact.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        let mut path: Vec<SpanId> = Vec::new();
        for id in 0..self.registered {
            if self.root[id] > 0 || (self.count[id] > 0 && !self.has_parent(id)) {
                self.collapse_into(id, &mut path, &mut out);
            }
        }
        out
    }

    fn has_parent(&self, id: SpanId) -> bool {
        (0..self.registered).any(|p| self.edge[p][id] > 0)
    }

    fn collapse_into(&self, id: SpanId, path: &mut Vec<SpanId>, out: &mut String) {
        if path.len() >= MAX_DEPTH || path.contains(&id) {
            return;
        }
        path.push(id);
        for (i, span) in path.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(self.names[*span]);
        }
        out.push(' ');
        out.push_str(&self.self_nanos[id].to_string());
        out.push('\n');
        for child in 0..self.registered {
            if self.edge[id][child] > 0 {
                self.collapse_into(child, path, out);
            }
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_profiler_registers_all_named_phases() {
        let profiler = SpanProfiler::engine();
        assert_eq!(profiler.registered(), span::NAMES.len());
        assert_eq!(profiler.name(span::ROUTE_SELECT), "route-select");
        assert_eq!(profiler.name(span::AUDIT_SHADOW), "audit-shadow");
    }

    #[test]
    fn nesting_splits_self_from_total() {
        let mut profiler = SpanProfiler::engine();
        profiler.enter(span::STAGE, 100);
        profiler.enter(span::ROUTE_SELECT, 110);
        profiler.exit(140); // route-select: 30ns
        profiler.enter(span::WIRE_ENCODE, 150);
        profiler.exit(170); // wire-encode: 20ns
        profiler.exit(200); // stage: total 100ns, self 100-30-20=50ns
        assert_eq!(profiler.stat(span::STAGE), (1, 100, 50));
        assert_eq!(profiler.stat(span::ROUTE_SELECT), (1, 30, 30));
        assert_eq!(profiler.stat(span::WIRE_ENCODE), (1, 20, 20));
    }

    #[test]
    fn json_is_schema_pinned_and_collapsed_stacks_cover_paths() {
        let mut profiler = SpanProfiler::engine();
        profiler.enter(span::STAGE, 0);
        profiler.enter(span::ROUTE_SELECT, 10);
        profiler.exit(25);
        profiler.exit(40);
        let json = profiler.to_json();
        assert!(json.starts_with("{\"version\":1,\"schema\":\"bgpvcg-profile-v1\""));
        assert!(json.contains(
            "{\"name\":\"route-select\",\"count\":1,\"total_nanos\":15,\"self_nanos\":15}"
        ));
        let collapsed = profiler.collapsed();
        assert!(collapsed.contains("stage 25\n"), "{collapsed}");
        assert!(collapsed.contains("stage;route-select 15\n"), "{collapsed}");
    }

    #[test]
    fn depth_overflow_is_counted_and_stays_balanced() {
        let mut profiler = SpanProfiler::engine();
        for i in 0..(MAX_DEPTH + 2) {
            profiler.enter(span::STAGE, i as u64);
        }
        for i in 0..(MAX_DEPTH + 2) {
            profiler.exit((MAX_DEPTH + 2 + i) as u64);
        }
        assert_eq!(profiler.truncated(), 2);
        assert_eq!(profiler.stat(span::STAGE).0, MAX_DEPTH as u64);
        // Balanced again: a fresh enter/exit works.
        profiler.enter(span::ROUTE_SELECT, 100);
        profiler.exit(101);
        assert_eq!(profiler.stat(span::ROUTE_SELECT), (1, 1, 1));
    }

    #[test]
    fn merge_sums_counts_and_times() {
        let mut a = SpanProfiler::engine();
        a.enter(span::STAGE, 0);
        a.exit(10);
        let mut b = SpanProfiler::engine();
        b.enter(span::STAGE, 0);
        b.exit(32);
        a.merge(&b);
        assert_eq!(a.stat(span::STAGE), (2, 42, 42));
    }

    #[test]
    fn manual_timestamps_make_profiles_deterministic() {
        let run = || {
            let mut p = SpanProfiler::engine();
            p.enter(span::STAGE, 1_000);
            p.enter(span::ROUTE_SELECT, 1_100);
            p.exit(1_400);
            p.exit(2_000);
            p.to_json()
        };
        assert_eq!(run(), run());
    }
}
