//! The shared metrics registry.
//!
//! Registration (first use of a name) takes a short mutex hold; every
//! subsequent update on the returned handle is a single atomic operation,
//! so instrumented hot loops never contend on a lock — the "lock-free-ish"
//! discipline the engines need while one observer thread reads snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::SeqCst);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// A last-write-wins gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::SeqCst);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Shared storage of one histogram: fixed upper bounds, per-bucket counts,
/// plus running sum and count. All updates are atomic.
#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// One count per finite bucket plus the overflow (`+Inf`) bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(core.bounds.len());
        // lint:allow(bounds: buckets is sized one past bounds len and idx never exceeds it)
        core.buckets[idx].fetch_add(1, Ordering::SeqCst);
        core.sum.fetch_add(value, Ordering::SeqCst);
        core.count.fetch_add(1, Ordering::SeqCst);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::SeqCst)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::SeqCst)
    }
}

/// Point-in-time copy of one histogram, for exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket counts aligned with `bounds`, plus a final overflow
    /// bucket (everything above the last bound).
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

/// Point-in-time copy of the whole registry, for exposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Default histogram bounds for nanosecond durations: powers of four from
/// 1 µs to ~4.4 s, a decade-spanning exponential ladder.
pub const DEFAULT_NANOS_BOUNDS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

/// A named registry of counters, gauges, and histograms.
///
/// # Example
///
/// ```
/// use bgpvcg_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// let sent = registry.counter("bgp_updates_sent_total");
/// sent.add(3);
/// assert_eq!(registry.snapshot().counters["bgp_updates_sent_total"], 3);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    /// Handles to the same name share storage.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        Counter(Arc::clone(map.entry(name.to_string()).or_default()))
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        Gauge(Arc::clone(map.entry(name.to_string()).or_default()))
    }

    /// Returns the histogram named `name` with [`DEFAULT_NANOS_BOUNDS`],
    /// creating it on first use. If the name already exists, the existing
    /// bounds win.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_bounds(name, &DEFAULT_NANOS_BOUNDS)
    }

    /// Returns the histogram named `name`, creating it with the given
    /// strictly-increasing upper `bounds` on first use. If the name already
    /// exists, the existing bounds win.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let mut map = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let core = map.entry(name.to_string()).or_insert_with(|| {
            Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })
        });
        Histogram(Arc::clone(core))
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::SeqCst)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::SeqCst)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, core)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: core.bounds.clone(),
                        buckets: core
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::SeqCst))
                            .collect(),
                        sum: core.sum.load(Ordering::SeqCst),
                        count: core.count.load(Ordering::SeqCst),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_storage() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(registry.snapshot().counters["x"], 5);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("depth");
        g.set(9);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(registry.snapshot().gauges["depth"], 3);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram_with_bounds("lat", &[10, 100]);
        h.observe(5); // bucket 0
        h.observe(10); // bucket 0 (inclusive bound)
        h.observe(50); // bucket 1
        h.observe(1_000); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_065);
        let snap = registry.snapshot().histograms["lat"].clone();
        assert_eq!(snap.buckets, vec![2, 1, 1]);
        assert_eq!(snap.bounds, vec![10, 100]);
    }

    #[test]
    fn histogram_bounds_first_registration_wins() {
        let registry = MetricsRegistry::new();
        let a = registry.histogram_with_bounds("h", &[1, 2, 3]);
        let b = registry.histogram_with_bounds("h", &[500]);
        b.observe(2);
        assert_eq!(a.count(), 1);
        assert_eq!(registry.snapshot().histograms["h"].bounds, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let registry = MetricsRegistry::new();
        let _ = registry.histogram_with_bounds("h", &[5, 5]);
    }

    #[test]
    fn updates_are_visible_across_threads() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("racing");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4_000);
    }
}
