//! Causal provenance analysis: convergence DAGs and critical paths.
//!
//! Every broadcast `Update` carries an engine-assigned provenance id, and
//! every `RouteSelected` / `PriceRelaxed` / `Withdrawn` trace event carries
//! the `(cause, effect)` pair linking the inbound update that triggered the
//! change to the outbound update carrying it (cause 0 = the environment:
//! origin advertisements, topology events, session full-table syncs). This
//! module rebuilds the *convergence DAG* from such a trace — one vertex per
//! broadcast update, one edge per distinct cause→effect pair — and answers
//! the questions the paper's stage bounds pose:
//!
//! * **Acyclicity** is structural: engines assign ids monotonically, so a
//!   valid trace has `cause < effect` on every edge ([`CausalDag::validate`]
//!   rejects anything else).
//! * The **critical path** is the longest causal chain. Each causal hop
//!   crosses at least one synchronous stage boundary, so its *edge* length
//!   is bounded by the stage count the engine reported at quiescence — the
//!   cross-check [`CausalDag::validate`] performs per update
//!   (`depth(u) ≤ stage(u)`) and `cargo xtask obs --causal` reports.
//! * **Message amplification** attributes each update to the AS whose
//!   earlier update caused it; **price churn** attributes each
//!   `PriceRelaxed` to its destination.
//!
//! Traces concatenate runs (the experiment binaries re-run engines per
//! topology, and ids restart with each engine), so building segments the
//! stream at `Quiescent` events: one DAG per convergence run.

use crate::event::TraceEvent;
use crate::json::{parse, JsonValue};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One vertex of the convergence DAG: a broadcast update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateVertex {
    /// The advertising AS.
    pub node: u32,
    /// Stage (or async sequence) the update was broadcast at.
    pub stage: u64,
    /// Trace events carried by this update (advertisements that changed).
    pub events: u64,
}

/// Why a trace is not a valid convergence DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalError {
    /// An edge does not go strictly forward in id order — impossible under
    /// monotone id assignment, so the trace is corrupt (or a cycle).
    NonMonotone {
        /// The offending edge's cause id.
        cause: u64,
        /// The offending edge's effect id.
        effect: u64,
    },
    /// An event names a cause id that no update in the segment owns.
    UnknownCause {
        /// The dangling cause id.
        cause: u64,
        /// The effect id whose event referenced it.
        effect: u64,
    },
    /// An update's causal depth exceeds the stage it was broadcast at —
    /// violating "each causal hop crosses a stage boundary".
    DepthExceedsStage {
        /// The offending update id.
        id: u64,
        /// Its causal depth (edges from a root).
        depth: u64,
        /// The stage it was broadcast at.
        stage: u64,
    },
    /// The critical path is longer than the stage count the engine
    /// reported at quiescence.
    PathExceedsReportedStages {
        /// Critical-path length in edges.
        depth: u64,
        /// The `Quiescent` event's stage.
        stages: u64,
    },
    /// Strict-root check: an AS broadcast more than one stage-0 update.
    DuplicateOriginRoot {
        /// The offending AS.
        node: u32,
    },
    /// Strict-root check: a causeless update was broadcast after stage 0 —
    /// in a fresh run, every non-origin update has an inbound cause, so a
    /// late root means its trigger went untraced.
    LateRoot {
        /// The offending update id.
        id: u64,
        /// The stage it was broadcast at.
        stage: u64,
    },
}

impl fmt::Display for CausalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalError::NonMonotone { cause, effect } => {
                write!(f, "edge {cause} -> {effect} is not strictly forward")
            }
            CausalError::UnknownCause { cause, effect } => {
                write!(f, "effect {effect} references unknown cause {cause}")
            }
            CausalError::DepthExceedsStage { id, depth, stage } => {
                write!(f, "update {id} has depth {depth} > stage {stage}")
            }
            CausalError::PathExceedsReportedStages { depth, stages } => {
                write!(f, "critical path {depth} exceeds reported stages {stages}")
            }
            CausalError::DuplicateOriginRoot { node } => {
                write!(
                    f,
                    "node {node} broadcast more than one stage-0 origin update"
                )
            }
            CausalError::LateRoot { id, stage } => {
                write!(
                    f,
                    "causeless update {id} at stage {stage} (untraced trigger)"
                )
            }
        }
    }
}

impl std::error::Error for CausalError {}

/// The convergence DAG of one run segment (one engine's trace between
/// start and `Quiescent`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CausalDag {
    /// Vertices keyed by update (effect) id.
    updates: BTreeMap<u64, UpdateVertex>,
    /// Distinct `(cause, effect)` edges with a non-environment cause.
    edges: BTreeSet<(u64, u64)>,
    /// Causal trace events observed (RouteSelected + PriceRelaxed +
    /// Withdrawn).
    events: u64,
    route_selections: u64,
    price_relaxations: u64,
    withdrawals: u64,
    /// `PriceRelaxed` count per destination AS.
    churn: BTreeMap<u32, u64>,
    /// The closing `Quiescent` event's stage and message count, if the
    /// segment has one.
    reported_stages: Option<u64>,
    reported_messages: Option<u64>,
}

impl CausalDag {
    /// Splits an event stream into per-run segments at `Quiescent`
    /// boundaries and builds one DAG per segment. A trailing segment with
    /// no `Quiescent` (an aborted run) is included when it contains causal
    /// events; empty segments are dropped.
    pub fn from_events(events: &[TraceEvent]) -> Vec<CausalDag> {
        let mut dags = Vec::new();
        let mut current = CausalDag::default();
        for event in events {
            current.observe(event);
            if let TraceEvent::Quiescent { .. } = event {
                dags.push(std::mem::take(&mut current));
            }
        }
        if !current.updates.is_empty() {
            dags.push(current);
        }
        dags
    }

    /// Like [`CausalDag::from_events`], over JSONL text: one event object
    /// per line, as produced by `--trace-out`. Unknown event types are
    /// skipped (forward compatibility is the schema validator's business,
    /// not this builder's).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<Vec<CausalDag>, String> {
        let mut dags = Vec::new();
        let mut current = CausalDag::default();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
            let kind = value
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("line {}: missing type tag", idx + 1))?;
            let field = |name: &str| -> Result<u64, String> {
                value
                    .get(name)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("line {}: missing field {name}", idx + 1))
            };
            match kind {
                "RouteSelected" | "PriceRelaxed" | "Withdrawn" => {
                    let dest = u32::try_from(field("dest")?)
                        .map_err(|_| format!("line {}: dest out of range", idx + 1))?;
                    let node = u32::try_from(field("node")?)
                        .map_err(|_| format!("line {}: node out of range", idx + 1))?;
                    current.observe_causal(
                        kind,
                        node,
                        dest,
                        field("stage")?,
                        field("cause")?,
                        field("effect")?,
                    );
                }
                "Quiescent" => {
                    current.reported_stages = Some(field("stage")?);
                    current.reported_messages = Some(field("messages")?);
                    dags.push(std::mem::take(&mut current));
                }
                _ => {}
            }
        }
        if !current.updates.is_empty() {
            dags.push(current);
        }
        Ok(dags)
    }

    /// Feeds one typed event into the segment under construction.
    fn observe(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::RouteSelected {
                node,
                dest,
                stage,
                cause,
                effect,
                ..
            } => self.observe_causal("RouteSelected", node, dest, stage, cause, effect),
            TraceEvent::PriceRelaxed {
                node,
                dest,
                stage,
                cause,
                effect,
                ..
            } => self.observe_causal("PriceRelaxed", node, dest, stage, cause, effect),
            TraceEvent::Withdrawn {
                node,
                dest,
                stage,
                cause,
                effect,
            } => self.observe_causal("Withdrawn", node, dest, stage, cause, effect),
            TraceEvent::Quiescent { stage, messages } => {
                self.reported_stages = Some(stage);
                self.reported_messages = Some(messages);
            }
            _ => {}
        }
    }

    fn observe_causal(
        &mut self,
        kind: &str,
        node: u32,
        dest: u32,
        stage: u64,
        cause: u64,
        effect: u64,
    ) {
        self.events += 1;
        match kind {
            "RouteSelected" => self.route_selections += 1,
            "PriceRelaxed" => {
                self.price_relaxations += 1;
                *self.churn.entry(dest).or_insert(0) += 1;
            }
            _ => self.withdrawals += 1,
        }
        let vertex = self.updates.entry(effect).or_insert(UpdateVertex {
            node,
            stage,
            events: 0,
        });
        vertex.events += 1;
        if cause != 0 {
            self.edges.insert((cause, effect));
        }
    }

    /// Number of updates (vertices).
    pub fn update_count(&self) -> usize {
        self.updates.len()
    }

    /// Number of distinct non-environment cause→effect edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Causal trace events the segment carried.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// The closing `Quiescent` stage, if the segment completed.
    pub fn reported_stages(&self) -> Option<u64> {
        self.reported_stages
    }

    /// The vertex for update `id`, if present.
    pub fn vertex(&self, id: u64) -> Option<&UpdateVertex> {
        self.updates.get(&id)
    }

    /// Ids of updates with no non-environment cause (the DAG's roots).
    pub fn roots(&self) -> Vec<u64> {
        let caused: BTreeSet<u64> = self.edges.iter().map(|&(_, e)| e).collect();
        self.updates
            .keys()
            .copied()
            .filter(|id| !caused.contains(id))
            .collect()
    }

    /// Causal depth (edges from a root) per update id. Computed by DP in
    /// ascending id order, which is topological once
    /// [`CausalDag::validate`] has passed.
    pub fn depths(&self) -> BTreeMap<u64, u64> {
        let mut depths: BTreeMap<u64, u64> = BTreeMap::new();
        for &id in self.updates.keys() {
            depths.insert(id, 0);
        }
        for &(cause, effect) in &self.edges {
            let candidate = depths.get(&cause).copied().unwrap_or(0) + 1;
            let entry = depths.entry(effect).or_insert(0);
            if candidate > *entry {
                *entry = candidate;
            }
        }
        depths
    }

    /// The longest causal chain, as update ids from a root to the deepest
    /// update. Ties break toward the smallest id at each step, so the path
    /// is deterministic. Empty when the DAG is empty.
    pub fn critical_path(&self) -> Vec<u64> {
        let depths = self.depths();
        let Some((&tail, _)) = depths
            .iter()
            .max_by_key(|&(id, depth)| (*depth, std::cmp::Reverse(*id)))
        else {
            return Vec::new();
        };
        // Walk backward: from each effect, the predecessor is the smallest
        // cause sitting exactly one level up.
        let mut path = vec![tail];
        let mut current = tail;
        while depths.get(&current).copied().unwrap_or(0) > 0 {
            let want = depths[&current] - 1;
            let Some(&(prev, _)) = self
                .edges
                .iter()
                .filter(|&&(c, e)| e == current && depths.get(&c).copied().unwrap_or(0) == want)
                .min()
            else {
                break;
            };
            path.push(prev);
            current = prev;
        }
        path.reverse();
        path
    }

    /// Depth histogram: entry `d` counts updates at causal depth `d`.
    pub fn depth_histogram(&self) -> Vec<u64> {
        let depths = self.depths();
        let max = depths.values().copied().max().unwrap_or(0);
        let mut histogram = vec![0u64; (max + 1) as usize];
        if self.updates.is_empty() {
            return Vec::new();
        }
        for depth in depths.values() {
            histogram[*depth as usize] += 1;
        }
        histogram
    }

    /// Message amplification per AS: how many *distinct downstream updates*
    /// each AS's updates directly caused. The heaviest entries are the
    /// topology's propagation hubs.
    pub fn amplification(&self) -> BTreeMap<u32, u64> {
        let mut children: BTreeMap<u32, u64> = BTreeMap::new();
        for &(cause, _) in &self.edges {
            if let Some(vertex) = self.updates.get(&cause) {
                *children.entry(vertex.node).or_insert(0) += 1;
            }
        }
        children
    }

    /// `PriceRelaxed` events per destination AS — where the pricing work
    /// concentrated.
    pub fn price_churn(&self) -> &BTreeMap<u32, u64> {
        &self.churn
    }

    /// Validates the segment as a convergence DAG:
    ///
    /// 1. every edge goes strictly forward (`cause < effect`) — which also
    ///    proves acyclicity, since a cycle needs a backward edge;
    /// 2. every referenced cause is an update the segment knows;
    /// 3. no update is causally deeper than the stage it was broadcast at;
    /// 4. when the segment closed with `Quiescent`, the critical path (in
    ///    edges) fits inside the reported stage count.
    ///
    /// # Errors
    ///
    /// The first violated condition, as a [`CausalError`].
    pub fn validate(&self) -> Result<(), CausalError> {
        for &(cause, effect) in &self.edges {
            if cause >= effect {
                return Err(CausalError::NonMonotone { cause, effect });
            }
            if !self.updates.contains_key(&cause) {
                return Err(CausalError::UnknownCause { cause, effect });
            }
        }
        let depths = self.depths();
        for (&id, &depth) in &depths {
            let stage = self.updates[&id].stage;
            if depth > stage {
                return Err(CausalError::DepthExceedsStage { id, depth, stage });
            }
        }
        if let Some(stages) = self.reported_stages {
            let deepest = depths.values().copied().max().unwrap_or(0);
            if deepest > stages {
                return Err(CausalError::PathExceedsReportedStages {
                    depth: deepest,
                    stages,
                });
            }
        }
        Ok(())
    }

    /// Strict root check for *fresh* runs (no topology events, no session
    /// resyncs): every root must be a stage-0 origin broadcast, at most one
    /// per AS, carrying only environment causes.
    ///
    /// # Errors
    ///
    /// The first offending origin, as a [`CausalError`].
    pub fn validate_origin_roots(&self) -> Result<(), CausalError> {
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        for id in self.roots() {
            let vertex = self.updates[&id];
            if vertex.stage != 0 {
                return Err(CausalError::LateRoot {
                    id,
                    stage: vertex.stage,
                });
            }
            if !seen.insert(vertex.node) {
                return Err(CausalError::DuplicateOriginRoot { node: vertex.node });
            }
        }
        Ok(())
    }

    /// Per-segment summary statistics, ready for JSON exposition.
    pub fn summary(&self) -> CausalSummary {
        let depths = self.depths();
        let max_depth = depths.values().copied().max().unwrap_or(0);
        let mut amplifiers: Vec<(u32, u64)> = self.amplification().into_iter().collect();
        amplifiers.sort_by_key(|&(node, children)| (std::cmp::Reverse(children), node));
        amplifiers.truncate(8);
        let mut churn: Vec<(u32, u64)> = self.churn.iter().map(|(&d, &c)| (d, c)).collect();
        churn.sort_by_key(|&(dest, relaxations)| (std::cmp::Reverse(relaxations), dest));
        churn.truncate(8);
        CausalSummary {
            updates: self.updates.len() as u64,
            links: self.edges.len() as u64,
            roots: self.roots().len() as u64,
            events: self.events,
            route_selections: self.route_selections,
            price_relaxations: self.price_relaxations,
            withdrawals: self.withdrawals,
            max_depth,
            critical_path: self.critical_path(),
            depth_histogram: self.depth_histogram(),
            reported_stages: self.reported_stages,
            reported_messages: self.reported_messages,
            top_amplifiers: amplifiers,
            price_churn: churn,
        }
    }
}

/// Schema tag of the causal-summary artifact `cargo xtask obs --causal`
/// writes (and [`validate_summary_json`] checks).
pub const SUMMARY_SCHEMA: &str = "bgpvcg-causal-summary-v1";

/// Per-segment analytics extracted from a [`CausalDag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalSummary {
    /// DAG vertices (broadcast updates).
    pub updates: u64,
    /// Distinct non-environment cause→effect edges.
    pub links: u64,
    /// Updates with no non-environment cause.
    pub roots: u64,
    /// Causal trace events in the segment.
    pub events: u64,
    /// `RouteSelected` events.
    pub route_selections: u64,
    /// `PriceRelaxed` events.
    pub price_relaxations: u64,
    /// `Withdrawn` events.
    pub withdrawals: u64,
    /// Depth of the deepest update (critical path, in edges).
    pub max_depth: u64,
    /// The longest causal chain, as update ids.
    pub critical_path: Vec<u64>,
    /// Update count per causal depth.
    pub depth_histogram: Vec<u64>,
    /// The closing `Quiescent` stage, if the run completed.
    pub reported_stages: Option<u64>,
    /// The closing `Quiescent` message count, if the run completed.
    pub reported_messages: Option<u64>,
    /// Up to eight `(AS, caused updates)` pairs, heaviest first.
    pub top_amplifiers: Vec<(u32, u64)>,
    /// Up to eight `(destination, relaxations)` pairs, heaviest first.
    pub price_churn: Vec<(u32, u64)>,
}

impl CausalSummary {
    fn render_into(&self, out: &mut String) {
        out.push_str("{\"updates\":");
        out.push_str(&self.updates.to_string());
        out.push_str(",\"links\":");
        out.push_str(&self.links.to_string());
        out.push_str(",\"roots\":");
        out.push_str(&self.roots.to_string());
        out.push_str(",\"events\":");
        out.push_str(&self.events.to_string());
        out.push_str(",\"route_selections\":");
        out.push_str(&self.route_selections.to_string());
        out.push_str(",\"price_relaxations\":");
        out.push_str(&self.price_relaxations.to_string());
        out.push_str(",\"withdrawals\":");
        out.push_str(&self.withdrawals.to_string());
        out.push_str(",\"max_depth\":");
        out.push_str(&self.max_depth.to_string());
        push_u64_array(
            out,
            ",\"critical_path\":",
            self.critical_path.iter().copied(),
        );
        push_u64_array(
            out,
            ",\"depth_histogram\":",
            self.depth_histogram.iter().copied(),
        );
        match self.reported_stages {
            Some(stages) => {
                out.push_str(",\"reported_stages\":");
                out.push_str(&stages.to_string());
            }
            None => out.push_str(",\"reported_stages\":null"),
        }
        match self.reported_messages {
            Some(messages) => {
                out.push_str(",\"reported_messages\":");
                out.push_str(&messages.to_string());
            }
            None => out.push_str(",\"reported_messages\":null"),
        }
        push_pair_array(
            out,
            ",\"top_amplifiers\":",
            "node",
            "children",
            &self.top_amplifiers,
        );
        push_pair_array(
            out,
            ",\"price_churn\":",
            "dest",
            "relaxations",
            &self.price_churn,
        );
        out.push('}');
    }
}

fn push_u64_array(out: &mut String, prefix: &str, values: impl Iterator<Item = u64>) {
    out.push_str(prefix);
    out.push('[');
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_pair_array(out: &mut String, prefix: &str, k1: &str, k2: &str, pairs: &[(u32, u64)]) {
    out.push_str(prefix);
    out.push('[');
    for (i, &(a, b)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"{k1}\":{a},\"{k2}\":{b}}}"));
    }
    out.push(']');
}

/// Renders the causal-summary artifact: the schema tag plus one summary
/// object per run segment.
pub fn summaries_to_json(summaries: &[CausalSummary]) -> String {
    let mut out = String::with_capacity(256 * (summaries.len() + 1));
    out.push_str("{\"schema\":\"");
    out.push_str(SUMMARY_SCHEMA);
    out.push_str("\",\"segments\":[");
    for (i, summary) in summaries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        summary.render_into(&mut out);
    }
    out.push_str("]}");
    out
}

/// Validates a causal-summary artifact, structurally and semantically:
/// the schema tag, every required key with the right type, a strictly
/// increasing critical path of length `max_depth + 1` (for non-empty
/// segments), a depth histogram summing to the update count, and the
/// critical path inside the reported stage bound.
///
/// # Errors
///
/// A message naming the first violation.
pub fn validate_summary_json(text: &str) -> Result<(), String> {
    let value = parse(text).map_err(|e| e.to_string())?;
    if value.get("schema").and_then(JsonValue::as_str) != Some(SUMMARY_SCHEMA) {
        return Err(format!("schema tag must be {SUMMARY_SCHEMA:?}"));
    }
    let Some(JsonValue::Array(segments)) = value.get("segments") else {
        return Err("segments must be an array".to_string());
    };
    for (idx, segment) in segments.iter().enumerate() {
        validate_segment(segment).map_err(|e| format!("segment {idx}: {e}"))?;
    }
    Ok(())
}

fn validate_segment(segment: &JsonValue) -> Result<(), String> {
    let uint = |key: &str| -> Result<u64, String> {
        segment
            .get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing uint field {key}"))
    };
    let updates = uint("updates")?;
    uint("links")?;
    uint("roots")?;
    let events = uint("events")?;
    let selections = uint("route_selections")?;
    let relaxations = uint("price_relaxations")?;
    let withdrawals = uint("withdrawals")?;
    if selections + relaxations + withdrawals != events {
        return Err("event kinds must sum to events".to_string());
    }
    let max_depth = uint("max_depth")?;
    let uint_array = |key: &str| -> Result<Vec<u64>, String> {
        let Some(JsonValue::Array(items)) = segment.get(key) else {
            return Err(format!("missing array field {key}"));
        };
        items
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| format!("{key} must hold uints")))
            .collect()
    };
    let path = uint_array("critical_path")?;
    if updates > 0 && path.len() as u64 != max_depth + 1 {
        return Err("critical_path length must be max_depth + 1".to_string());
    }
    if !path.windows(2).all(|w| w[0] < w[1]) {
        return Err("critical_path must be strictly increasing".to_string());
    }
    let histogram = uint_array("depth_histogram")?;
    if histogram.iter().sum::<u64>() != updates {
        return Err("depth_histogram must sum to updates".to_string());
    }
    match segment.get("reported_stages") {
        Some(JsonValue::Null) | None => {}
        Some(JsonValue::UInt(stages)) => {
            if max_depth > *stages {
                return Err("max_depth must fit in reported_stages".to_string());
            }
        }
        Some(_) => return Err("reported_stages must be uint or null".to_string()),
    }
    for (key, k1, k2) in [
        ("top_amplifiers", "node", "children"),
        ("price_churn", "dest", "relaxations"),
    ] {
        let Some(JsonValue::Array(items)) = segment.get(key) else {
            return Err(format!("missing array field {key}"));
        };
        for item in items {
            if item.get(k1).and_then(JsonValue::as_u64).is_none()
                || item.get(k2).and_then(JsonValue::as_u64).is_none()
            {
                return Err(format!("{key} entries need {k1} and {k2}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selected(node: u32, dest: u32, stage: u64, cause: u64, effect: u64) -> TraceEvent {
        TraceEvent::RouteSelected {
            node,
            dest,
            stage,
            hops: 2,
            path_cost: 1,
            cause,
            effect,
        }
    }

    fn relaxed(node: u32, dest: u32, stage: u64, cause: u64, effect: u64) -> TraceEvent {
        TraceEvent::PriceRelaxed {
            node,
            dest,
            k: 9,
            stage,
            old: crate::INFINITE,
            new: 4,
            cause,
            effect,
        }
    }

    /// Two origin roots (ids 1, 2), a second-stage update caused by both
    /// events of id 1, and a third-stage update chaining off id 3.
    fn sample_events() -> Vec<TraceEvent> {
        vec![
            selected(0, 0, 0, 0, 1),
            selected(1, 1, 0, 0, 2),
            selected(2, 0, 1, 1, 3),
            relaxed(2, 1, 1, 2, 3),
            selected(3, 0, 2, 3, 4),
            TraceEvent::Quiescent {
                stage: 2,
                messages: 10,
            },
        ]
    }

    #[test]
    fn builds_one_dag_per_quiescent_segment() {
        let mut events = sample_events();
        events.extend(sample_events());
        let dags = CausalDag::from_events(&events);
        assert_eq!(dags.len(), 2);
        assert_eq!(dags[0], dags[1], "identical runs build identical DAGs");
        let dag = &dags[0];
        assert_eq!(dag.update_count(), 4);
        assert_eq!(dag.edge_count(), 3);
        assert_eq!(dag.event_count(), 5);
        assert_eq!(dag.roots(), vec![1, 2]);
        assert_eq!(dag.reported_stages(), Some(2));
        dag.validate().expect("valid trace");
        dag.validate_origin_roots().expect("strict roots");
    }

    #[test]
    fn depths_critical_path_and_histogram_agree() {
        let dag = &CausalDag::from_events(&sample_events())[0];
        let depths = dag.depths();
        assert_eq!(depths[&1], 0);
        assert_eq!(depths[&2], 0);
        assert_eq!(depths[&3], 1);
        assert_eq!(depths[&4], 2);
        assert_eq!(dag.critical_path(), vec![1, 3, 4]);
        assert_eq!(dag.depth_histogram(), vec![2, 1, 1]);
    }

    #[test]
    fn amplification_attributes_children_to_the_causing_as() {
        let dag = &CausalDag::from_events(&sample_events())[0];
        let amp = dag.amplification();
        // Update 1 (AS 0) caused update 3; update 2 (AS 1) caused update 3
        // via a second edge; update 3 (AS 2) caused update 4.
        assert_eq!(amp.get(&0), Some(&1));
        assert_eq!(amp.get(&1), Some(&1));
        assert_eq!(amp.get(&2), Some(&1));
        assert_eq!(dag.price_churn().get(&1), Some(&1));
    }

    #[test]
    fn validation_rejects_backward_dangling_and_deep() {
        let backward = CausalDag::from_events(&[selected(0, 0, 0, 0, 2), selected(1, 0, 1, 2, 2)]);
        assert_eq!(
            backward[0].validate(),
            Err(CausalError::NonMonotone {
                cause: 2,
                effect: 2
            })
        );
        let dangling = CausalDag::from_events(&[selected(1, 0, 1, 7, 9)]);
        assert_eq!(
            dangling[0].validate(),
            Err(CausalError::UnknownCause {
                cause: 7,
                effect: 9
            })
        );
        let deep = CausalDag::from_events(&[
            selected(0, 0, 0, 0, 1),
            // Caused by 1 but claims stage 0: a hop without a stage.
            selected(1, 0, 0, 1, 2),
        ]);
        assert_eq!(
            deep[0].validate(),
            Err(CausalError::DepthExceedsStage {
                id: 2,
                depth: 1,
                stage: 0
            })
        );
        let overlong = CausalDag::from_events(&[
            selected(0, 0, 0, 0, 1),
            selected(1, 0, 5, 1, 2),
            TraceEvent::Quiescent {
                stage: 0,
                messages: 1,
            },
        ]);
        assert_eq!(
            overlong[0].validate(),
            Err(CausalError::PathExceedsReportedStages {
                depth: 1,
                stages: 0
            })
        );
    }

    #[test]
    fn strict_roots_reject_duplicates_and_late_roots() {
        let duplicated =
            CausalDag::from_events(&[selected(0, 0, 0, 0, 1), selected(0, 1, 0, 0, 2)]);
        assert_eq!(
            duplicated[0].validate_origin_roots(),
            Err(CausalError::DuplicateOriginRoot { node: 0 })
        );
        let late = CausalDag::from_events(&[selected(3, 0, 2, 0, 5)]);
        assert_eq!(
            late[0].validate_origin_roots(),
            Err(CausalError::LateRoot { id: 5, stage: 2 })
        );
    }

    #[test]
    fn jsonl_builder_matches_the_typed_builder() {
        let events = sample_events();
        let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let from_text = CausalDag::from_jsonl(&text).expect("parses");
        assert_eq!(from_text, CausalDag::from_events(&events));
        assert!(CausalDag::from_jsonl("{\"type\":\"RouteSelected\"}").is_err());
        assert!(CausalDag::from_jsonl("not json").is_err());
    }

    #[test]
    fn summary_round_trips_through_the_validator() {
        let dags = CausalDag::from_events(&sample_events());
        let summaries: Vec<CausalSummary> = dags.iter().map(CausalDag::summary).collect();
        assert_eq!(summaries[0].updates, 4);
        assert_eq!(summaries[0].max_depth, 2);
        assert_eq!(summaries[0].critical_path, vec![1, 3, 4]);
        let text = summaries_to_json(&summaries);
        validate_summary_json(&text).expect("artifact validates");
        // Tampering trips the semantic checks.
        let broken = text.replace("\"max_depth\":2", "\"max_depth\":9");
        assert!(validate_summary_json(&broken).is_err());
        let untagged = text.replace(SUMMARY_SCHEMA, "bogus");
        assert!(validate_summary_json(&untagged).is_err());
    }

    #[test]
    fn empty_and_aborted_segments_behave() {
        assert!(CausalDag::from_events(&[]).is_empty());
        // No Quiescent: the aborted tail still becomes a DAG.
        let aborted = CausalDag::from_events(&[selected(0, 0, 0, 0, 1)]);
        assert_eq!(aborted.len(), 1);
        assert_eq!(aborted[0].reported_stages(), None);
        aborted[0].validate().expect("aborted runs still validate");
        let summary = aborted[0].summary();
        assert_eq!(summary.reported_stages, None);
        validate_summary_json(&summaries_to_json(&[summary])).expect("null stages validate");
    }
}
