//! The golden trace schema and its validator.
//!
//! `trace-schema.json` (embedded at compile time) is the contract between
//! trace producers and every downstream consumer: one entry per
//! [`TraceEvent`](crate::TraceEvent) variant listing its required fields
//! and their numeric widths. `cargo xtask obs` validates emitted JSONL
//! traces line by line against it, and the `trace-schema` lint rule keeps
//! the fixture's coverage exhaustive when variants are added.

use crate::json::{parse, JsonValue};
use std::collections::BTreeMap;
use std::fmt;

/// The embedded golden schema source.
pub const GOLDEN_SCHEMA_JSON: &str = include_str!("../trace-schema.json");

/// A parsed schema: event kind → (field name → width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    events: BTreeMap<String, BTreeMap<String, FieldType>>,
}

/// Permitted field widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// Non-negative integer fitting in 32 bits (AS numbers, hop counts).
    U32,
    /// Non-negative integer fitting in 64 bits (stages, costs, prices —
    /// `u64::MAX` encodes `∞`).
    U64,
}

/// A schema-validation failure for one trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// The line is not valid JSON.
    Json(crate::json::JsonError),
    /// The line is valid JSON but not an object with a string `type`.
    NotAnEvent,
    /// The `type` tag names no schema event.
    UnknownKind(String),
    /// A required field is missing.
    MissingField {
        /// The event kind being validated.
        kind: String,
        /// The absent field.
        field: String,
    },
    /// A field is present but has the wrong type or width.
    BadField {
        /// The event kind being validated.
        kind: String,
        /// The offending field.
        field: String,
    },
    /// The event carries a field the schema does not know.
    UnknownField {
        /// The event kind being validated.
        kind: String,
        /// The unexpected field.
        field: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Json(e) => write!(f, "{e}"),
            SchemaError::NotAnEvent => {
                write!(f, "line is not an object with a string `type` tag")
            }
            SchemaError::UnknownKind(kind) => write!(f, "unknown event kind `{kind}`"),
            SchemaError::MissingField { kind, field } => {
                write!(f, "{kind}: required field `{field}` is missing")
            }
            SchemaError::BadField { kind, field } => {
                write!(f, "{kind}: field `{field}` has the wrong type/width")
            }
            SchemaError::UnknownField { kind, field } => {
                write!(f, "{kind}: field `{field}` is not in the schema")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// Loads the embedded golden schema.
    ///
    /// # Panics
    ///
    /// Panics if the embedded fixture is malformed — a build-time asset
    /// error, caught by this crate's tests.
    pub fn golden() -> Schema {
        Schema::from_json(GOLDEN_SCHEMA_JSON).expect("embedded trace-schema.json must be valid")
    }

    /// Parses a schema document (the `trace-schema.json` format).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_json(source: &str) -> Result<Schema, String> {
        let doc = parse(source).map_err(|e| e.to_string())?;
        let events_val = doc
            .get("events")
            .ok_or_else(|| "schema document needs an `events` object".to_string())?;
        let JsonValue::Object(event_map) = events_val else {
            return Err("`events` must be an object".to_string());
        };
        let mut events = BTreeMap::new();
        for (kind, fields_val) in event_map {
            let JsonValue::Object(field_map) = fields_val else {
                return Err(format!("event `{kind}` must map fields to widths"));
            };
            let mut fields = BTreeMap::new();
            for (field, width) in field_map {
                let ty = match width.as_str() {
                    Some("u32") => FieldType::U32,
                    Some("u64") => FieldType::U64,
                    _ => {
                        return Err(format!(
                            "event `{kind}` field `{field}` has unsupported width"
                        ))
                    }
                };
                fields.insert(field.clone(), ty);
            }
            events.insert(kind.clone(), fields);
        }
        if events.is_empty() {
            return Err("schema defines no events".to_string());
        }
        Ok(Schema { events })
    }

    /// Every event kind the schema covers, sorted.
    pub fn kinds(&self) -> Vec<&str> {
        self.events.keys().map(String::as_str).collect()
    }

    /// Validates one JSONL trace line, returning the event kind on success.
    ///
    /// # Errors
    ///
    /// Returns the first [`SchemaError`] the line exhibits.
    pub fn validate_line(&self, line: &str) -> Result<String, SchemaError> {
        let value = parse(line).map_err(SchemaError::Json)?;
        let JsonValue::Object(obj) = &value else {
            return Err(SchemaError::NotAnEvent);
        };
        let Some(kind) = value.get("type").and_then(JsonValue::as_str) else {
            return Err(SchemaError::NotAnEvent);
        };
        let Some(fields) = self.events.get(kind) else {
            return Err(SchemaError::UnknownKind(kind.to_string()));
        };
        for (field, ty) in fields {
            let Some(v) = obj.get(field) else {
                return Err(SchemaError::MissingField {
                    kind: kind.to_string(),
                    field: field.clone(),
                });
            };
            let ok = match ty {
                FieldType::U32 => v.as_u64().is_some_and(|n| n <= u64::from(u32::MAX)),
                FieldType::U64 => v.as_u64().is_some(),
            };
            if !ok {
                return Err(SchemaError::BadField {
                    kind: kind.to_string(),
                    field: field.clone(),
                });
            }
        }
        for field in obj.keys() {
            if field != "type" && !fields.contains_key(field) {
                return Err(SchemaError::UnknownField {
                    kind: kind.to_string(),
                    field: field.clone(),
                });
            }
        }
        Ok(kind.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, INFINITE};

    #[test]
    fn golden_schema_loads_and_covers_all_variants() {
        let schema = Schema::golden();
        assert_eq!(
            schema.kinds(),
            vec![
                "AdversaryInjected",
                "AuditViolation",
                "FaultInjected",
                "HealthVerdict",
                "NodeQuarantined",
                "NodeRestart",
                "PriceRelaxed",
                "Quiescent",
                "Retransmit",
                "RouteSelected",
                "SessionReset",
                "SpanSummary",
                "StageStart",
                "Withdrawn"
            ]
        );
    }

    #[test]
    fn every_event_variant_validates_against_the_golden_schema() {
        let schema = Schema::golden();
        let events = [
            TraceEvent::StageStart { stage: 1 },
            TraceEvent::RouteSelected {
                node: 0,
                dest: 1,
                stage: 1,
                hops: 3,
                path_cost: 9,
                cause: 0,
                effect: 1,
            },
            TraceEvent::PriceRelaxed {
                node: 0,
                dest: 1,
                k: 2,
                stage: 2,
                old: INFINITE,
                new: 4,
                cause: 1,
                effect: 2,
            },
            TraceEvent::Withdrawn {
                node: 0,
                dest: 1,
                stage: 3,
                cause: 2,
                effect: 3,
            },
            TraceEvent::Quiescent {
                stage: 3,
                messages: 20,
            },
            TraceEvent::FaultInjected {
                stage: 4,
                node: 0,
                peer: u32::MAX,
                fault: 4,
            },
            TraceEvent::Retransmit {
                stage: 5,
                from: 1,
                to: 0,
                seq: 12,
            },
            TraceEvent::SessionReset {
                stage: 6,
                node: 0,
                peer: 1,
            },
            TraceEvent::NodeRestart { stage: 7, node: 0 },
            TraceEvent::AdversaryInjected {
                stage: 8,
                node: 2,
                peer: 0,
                strategy: 4,
            },
            TraceEvent::AuditViolation {
                stage: 9,
                node: 2,
                dest: 1,
                expected: 6,
                advertised: INFINITE,
                violation: 0,
            },
            TraceEvent::NodeQuarantined { stage: 9, node: 2 },
            TraceEvent::HealthVerdict {
                stage: 10,
                detector: 1,
                node: u32::MAX,
                dest: u32::MAX,
                count: 48,
                threshold: 12,
            },
            TraceEvent::SpanSummary {
                stage: 10,
                span: 3,
                count: 77,
                total_nanos: 12_000,
                self_nanos: 9_000,
            },
        ];
        for event in &events {
            assert_eq!(
                schema.validate_line(&event.to_json()).as_deref(),
                Ok(event.kind()),
                "{event:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_lines() {
        let schema = Schema::golden();
        assert!(matches!(
            schema.validate_line("not json"),
            Err(SchemaError::Json(_))
        ));
        assert!(matches!(
            schema.validate_line("[1]"),
            Err(SchemaError::NotAnEvent)
        ));
        assert!(matches!(
            schema.validate_line("{\"type\":\"Mystery\",\"stage\":1}"),
            Err(SchemaError::UnknownKind(_))
        ));
        assert!(matches!(
            schema.validate_line("{\"type\":\"StageStart\"}"),
            Err(SchemaError::MissingField { .. })
        ));
        assert!(matches!(
            schema.validate_line("{\"type\":\"StageStart\",\"stage\":\"x\"}"),
            Err(SchemaError::BadField { .. })
        ));
        assert!(matches!(
            schema.validate_line("{\"type\":\"StageStart\",\"stage\":1,\"extra\":2}"),
            Err(SchemaError::UnknownField { .. })
        ));
        // u32 fields reject values beyond 32 bits.
        assert!(matches!(
            schema.validate_line(
                "{\"type\":\"Withdrawn\",\"node\":4294967296,\"dest\":1,\"stage\":1,\
                 \"cause\":0,\"effect\":1}"
            ),
            Err(SchemaError::BadField { .. })
        ));
        // Causal events without provenance ids are schema violations.
        assert!(matches!(
            schema.validate_line("{\"type\":\"Withdrawn\",\"node\":4,\"dest\":1,\"stage\":1}"),
            Err(SchemaError::MissingField { field, .. }) if field == "cause"
        ));
    }

    #[test]
    fn from_json_rejects_malformed_schemas() {
        assert!(Schema::from_json("{}").is_err());
        assert!(Schema::from_json("{\"events\":{}}").is_err());
        assert!(Schema::from_json("{\"events\":{\"X\":{\"f\":\"u128\"}}}").is_err());
        assert!(Schema::from_json("{\"events\":3}").is_err());
    }
}
