//! Injectable time sources.
//!
//! The registry's per-stage wall-time histogram must not make deterministic
//! test runs (or the `invariant-checks` replay discipline) time-dependent,
//! so every timing read goes through a [`Clock`] the caller chooses:
//! [`SystemClock`] for real measurements, [`ManualClock`] for tests that
//! advance time by hand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since the clock's own epoch. Only differences are
    /// meaningful.
    fn now_nanos(&self) -> u64;
}

/// Real wall time, measured from the moment the clock was created.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A clock that only moves when told to — the deterministic stand-in for
/// tests and replayable runs.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(5);
        clock.advance(7);
        assert_eq!(clock.now_nanos(), 12);
    }

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }
}
