//! Metrics exposition: Prometheus text format and JSON.

use crate::registry::MetricsSnapshot;
use std::fmt::Write as _;

/// Renders a snapshot in the Prometheus text exposition format (one
/// `# TYPE` line per metric; histograms expand to cumulative `_bucket`
/// series plus `_sum` and `_count`).
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds.iter().zip(&hist.buckets) {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    out
}

/// Renders a snapshot as one JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{"name":{"bounds":[...],
/// "buckets":[...],"sum":N,"count":N}}}`. Keys are sorted (BTreeMap order),
/// so output is deterministic and diffable.
pub fn json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    let mut first = true;
    for (name, value) in &snapshot.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{name}\":{value}");
    }
    out.push_str("},\"gauges\":{");
    first = true;
    for (name, value) in &snapshot.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{name}\":{value}");
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for (name, hist) in &snapshot.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{name}\":{{\"bounds\":{:?}", hist.bounds);
        let _ = write!(out, ",\"buckets\":{:?}", hist.buckets);
        let _ = write!(out, ",\"sum\":{},\"count\":{}}}", hist.sum, hist.count);
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::registry::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        registry.counter("bgp_messages_total").add(12);
        registry.gauge("bgp_stages_to_quiescence").set(4);
        let h = registry.histogram_with_bounds("bgp_stage_wall_nanos", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        registry.snapshot()
    }

    #[test]
    fn prometheus_text_has_type_lines_and_cumulative_buckets() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE bgp_messages_total counter"));
        assert!(text.contains("bgp_messages_total 12"));
        assert!(text.contains("# TYPE bgp_stages_to_quiescence gauge"));
        assert!(text.contains("bgp_stage_wall_nanos_bucket{le=\"10\"} 1"));
        assert!(text.contains("bgp_stage_wall_nanos_bucket{le=\"100\"} 2"));
        assert!(text.contains("bgp_stage_wall_nanos_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("bgp_stage_wall_nanos_sum 555"));
        assert!(text.contains("bgp_stage_wall_nanos_count 3"));
    }

    #[test]
    fn json_exposition_round_trips_through_the_parser() {
        let rendered = json(&sample_snapshot());
        let v = parse(&rendered).expect("exposition must be valid JSON");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("bgp_messages_total"))
                .and_then(crate::json::JsonValue::as_u64),
            Some(12)
        );
        let hist = v
            .get("histograms")
            .and_then(|h| h.get("bgp_stage_wall_nanos"))
            .expect("histogram present");
        assert_eq!(
            hist.get("count").and_then(crate::json::JsonValue::as_u64),
            Some(3)
        );
    }

    #[test]
    fn empty_snapshot_renders_cleanly() {
        let empty = MetricsSnapshot::default();
        assert_eq!(prometheus_text(&empty), "");
        assert!(parse(&json(&empty)).is_ok());
    }
}
