//! A minimal JSON reader.
//!
//! The workspace's serde is an offline no-op stand-in, so trace/metrics
//! validation needs its own reader. This one covers exactly the JSON this
//! crate emits — objects, arrays, strings, integers, floats, booleans,
//! null — and keeps unsigned integers exact (`u64::MAX` encodes `∞` in
//! traces, which `f64` cannot represent).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent, kept exact.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order normalized).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object's field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The exact unsigned value, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// Re-serializes the value as compact JSON. Object keys come out in
    /// normalized ([`BTreeMap`]) order, so `parse(x).render()` is a
    /// canonical form of `x` — what the flight-recorder validator feeds
    /// back through the line schema.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::UInt(v) => {
                let mut buf = [0u8; 20];
                let mut i = buf.len();
                let mut v = *v;
                loop {
                    i -= 1;
                    buf[i] = b'0' + (v % 10) as u8;
                    v /= 10;
                    if v == 0 {
                        break;
                    }
                }
                for &digit in &buf[i..] {
                    out.push(digit as char);
                }
            }
            JsonValue::Float(v) => {
                let text = format!("{v}");
                out.push_str(&text);
                // Integral floats like 2.0 format as "2"; restore the
                // fraction marker so a rendered Float never re-parses as a
                // UInt (negatives already carry their sign).
                if text.bytes().all(|b| b.is_ascii_digit()) {
                    out.push_str(".0");
                }
            }
            JsonValue::String(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::String(key.clone()).render_into(out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed byte.
///
/// # Example
///
/// ```
/// use bgpvcg_telemetry::json::{parse, JsonValue};
///
/// let v = parse("{\"stage\":3}").unwrap();
/// assert_eq!(v.get("stage").and_then(JsonValue::as_u64), Some(3));
/// ```
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", char::from(ch))))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{literal}`")))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogates are not needed by this crate's output.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = &bytes[*pos..];
                let text =
                    std::str::from_utf8(rest).map_err(|_| err(*pos, "invalid UTF-8 in string"))?;
                let ch = text.chars().next().ok_or_else(|| err(*pos, "empty"))?;
                if (ch as u32) < 0x20 {
                    return Err(err(*pos, "unescaped control character"));
                }
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    let mut integral = true;
    if bytes.get(*pos) == Some(&b'.') {
        integral = false;
        *pos += 1;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        integral = false;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "invalid number bytes"))?;
    if integral && !text.starts_with('-') {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| err(start, "malformed number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_event_lines_exactly() {
        let line = format!(
            "{{\"type\":\"PriceRelaxed\",\"node\":3,\"dest\":5,\"k\":4,\
             \"stage\":2,\"old\":{},\"new\":7}}",
            u64::MAX
        );
        let v = parse(&line).unwrap();
        assert_eq!(
            v.get("type").and_then(JsonValue::as_str),
            Some("PriceRelaxed")
        );
        assert_eq!(v.get("old").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert_eq!(v.get("new").and_then(JsonValue::as_u64), Some(7));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\":[1,2.5,true,null,\"x\\n\"],\"b\":{\"c\":-3}}").unwrap();
        let JsonValue::Array(items) = v.get("a").unwrap() else {
            panic!("a must be an array");
        };
        assert_eq!(items[0], JsonValue::UInt(1));
        assert_eq!(items[1], JsonValue::Float(2.5));
        assert_eq!(items[2], JsonValue::Bool(true));
        assert_eq!(items[3], JsonValue::Null);
        assert_eq!(items[4], JsonValue::String("x\n".into()));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Float(-3.0)));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "\"unterminated", "12 34", "{]"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse("  { \"k\" : [ 1 , 2 ] }  ").unwrap();
        assert!(v.get("k").is_some());
    }

    #[test]
    fn render_round_trips_canonical_values() {
        for text in [
            "{\"a\":[1,true,null,\"x\\n\"],\"b\":{\"c\":2}}",
            "{\"stage\":18446744073709551615}",
            "[]",
            "\"\\\"quoted\\\"\"",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(v.render(), text, "already-canonical text is fixed");
            assert_eq!(parse(&v.render()).unwrap(), v, "render re-parses");
        }
    }

    #[test]
    fn render_keeps_floats_floats() {
        let v = JsonValue::Float(2.0);
        assert_eq!(v.render(), "2.0");
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(JsonValue::Float(-3.0).render(), "-3");
        assert_eq!(JsonValue::Float(2.5).render(), "2.5");
    }
}
