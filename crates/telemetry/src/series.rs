//! Deterministic time series and mergeable quantile sketches.
//!
//! Two building blocks behind the convergence health monitor
//! (`docs/OBSERVABILITY.md` §time-series):
//!
//! * [`TimeSeries`] — a fixed-capacity ring of `(stage, value)` samples.
//!   Capacity is chosen at construction and never grows, so per-stage
//!   sampling on a run loop cannot allocate after setup; once full, the
//!   oldest samples are overwritten (and counted in [`TimeSeries::dropped`]).
//! * [`QuantileSketch`] — a power-of-two bucketed summary answering
//!   p50/p90/p99/max over `u64` samples. The bucket layout is fixed, every
//!   operation is integer arithmetic, and [`QuantileSketch::merge`] is
//!   commutative **and associative** (bucket counts add, sums saturate,
//!   maxima max), so merging per-worker shards in any grouping yields the
//!   same sketch bit-for-bit as recording serially. That is what lets the
//!   parallel engine report the same health verdicts as the serial one.
//!
//! Samples are keyed by the synchronous engine's stage index, not by wall
//! time: the injectable [`crate::Clock`] supplies nanoseconds where a
//! duration is the *value* being recorded, but placement on the series is
//! always deterministic.

use crate::event::INFINITE;

/// Number of buckets in a [`QuantileSketch`]: bucket 0 holds the value 0,
/// bucket `i` (1..=64) holds values in `[2^(i-1), 2^i)`.
pub const SKETCH_BUCKETS: usize = 65;

/// A fixed-capacity ring of `(stage, value)` samples in arrival order.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: &'static str,
    samples: Vec<(u64, u64)>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl TimeSeries {
    /// Creates an empty series holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: &'static str, capacity: usize) -> Self {
        assert!(capacity > 0, "time series capacity must be positive");
        TimeSeries {
            name,
            samples: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// The series name (used as the JSON key on export).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Appends one sample, overwriting the oldest once full. Never
    /// reallocates after the ring first fills.
    pub fn push(&mut self, stage: u64, value: u64) {
        if self.samples.len() < self.capacity {
            self.samples.push((stage, value));
        } else {
            // lint:allow(bounds: head stays below capacity by the modulo step and samples is capacity-full here)
            self.samples[self.head] = (stage, value);
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// How many samples were overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recently pushed sample.
    pub fn last(&self) -> Option<(u64, u64)> {
        if self.samples.is_empty() {
            None
        } else if self.samples.len() < self.capacity {
            self.samples.last().copied()
        } else {
            let idx = (self.head + self.capacity - 1) % self.capacity;
            // lint:allow(bounds: idx is reduced modulo capacity and samples is capacity-full here)
            Some(self.samples[idx])
        }
    }

    /// Retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let (tail, front) = self.samples.split_at(self.head);
        front.iter().chain(tail.iter()).copied()
    }

    /// Compact JSON: `{"name":"...","dropped":N,"points":[[stage,value],..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.len() * 12);
        out.push_str("{\"name\":\"");
        out.push_str(self.name);
        out.push_str("\",\"dropped\":");
        out.push_str(&self.dropped.to_string());
        out.push_str(",\"points\":[");
        for (i, (stage, value)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            out.push_str(&stage.to_string());
            out.push(',');
            out.push_str(&value.to_string());
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

/// A deterministic, mergeable quantile summary over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: [u64; SKETCH_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            counts: [0; SKETCH_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive upper bound a bucket's samples are reported as. This
    /// over-approximates, never under-approximates, a quantile.
    fn bucket_upper(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            64 => INFINITE,
            b => (1u64 << b) - 1,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        // lint:allow(bounds: bucket() returns the leading-bit index, always below the 65-slot counts array)
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Commutative and associative: bucket
    /// counts add, sums saturate (min of `u64::MAX` and the true total in
    /// every grouping), maxima take the max — so any merge tree over the
    /// same shards produces the identical sketch.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `permille`/1000 (e.g. 500 = p50), reported as
    /// the holding bucket's upper bound; the maximum is exact. Returns 0
    /// when empty.
    pub fn quantile_permille(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let permille = permille.min(1000);
        // Rank of the sample at this quantile, 1-based, rounded up so
        // p100 is the last sample.
        let rank = (self.count * permille).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The top bucket's upper bound is ∞; the true max is tighter.
                return Self::bucket_upper(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile_permille(500)
    }

    /// 90th percentile (bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.quantile_permille(900)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile_permille(990)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Compact JSON summary:
    /// `{"count":N,"sum":S,"p50":..,"p90":..,"p99":..,"max":..}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
            self.count,
            self.sum,
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut series = TimeSeries::new("s", 3);
        for stage in 1..=5u64 {
            series.push(stage, stage * 10);
        }
        assert_eq!(series.len(), 3);
        assert_eq!(series.dropped(), 2);
        let points: Vec<_> = series.iter().collect();
        assert_eq!(points, vec![(3, 30), (4, 40), (5, 50)]);
        assert_eq!(series.last(), Some((5, 50)));
    }

    #[test]
    fn series_json_is_exact() {
        let mut series = TimeSeries::new("premium", 4);
        series.push(1, 7);
        series.push(2, 9);
        assert_eq!(
            series.to_json(),
            "{\"name\":\"premium\",\"dropped\":0,\"points\":[[1,7],[2,9]]}"
        );
    }

    #[test]
    fn quantiles_over_known_samples() {
        let mut sketch = QuantileSketch::new();
        for v in 1..=100u64 {
            sketch.record(v);
        }
        assert_eq!(sketch.count(), 100);
        assert_eq!(sketch.max(), 100);
        // Bucket upper bounds: p50 of 1..=100 lands in [32,64) -> 63.
        assert_eq!(sketch.p50(), 63);
        assert_eq!(sketch.p90(), 100); // capped by the true max
        assert_eq!(sketch.quantile_permille(1000), 100);
        assert_eq!(QuantileSketch::new().p99(), 0);
    }

    #[test]
    fn merge_matches_serial_recording_bit_for_bit() {
        let samples: Vec<u64> = (0..200).map(|i| i * 37 % 1023).collect();
        let mut serial = QuantileSketch::new();
        for &v in &samples {
            serial.record(v);
        }
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, serial);
        // And the opposite grouping.
        let mut flipped = right;
        flipped.merge(&left);
        assert_eq!(flipped, serial);
    }

    #[test]
    fn merge_is_associative() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut c = QuantileSketch::new();
        for v in 0..50u64 {
            a.record(v * 3);
            b.record(v * 7 + 1);
            c.record(v * 11 + 2);
        }
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn saturating_sum_is_grouping_independent() {
        let mut a = QuantileSketch::new();
        a.record(u64::MAX - 10);
        let mut b = QuantileSketch::new();
        b.record(u64::MAX - 10);
        let mut c = QuantileSketch::new();
        c.record(5);
        let mut ab = a.clone();
        ab.merge(&b);
        ab.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a2 = a.clone();
        a2.merge(&bc);
        assert_eq!(ab.sum(), u64::MAX);
        assert_eq!(ab, a2);
    }
}
