//! The divergence flight recorder.
//!
//! When a convergence run blows past its stage horizon, or a chaos run
//! exhausts its budget without stabilizing, the interesting evidence — the
//! last few hundred trace events and the engine's terminal state — is about
//! to be lost. A [`FlightRecorder`] sits as an extra [`TraceSink`] teed
//! into the engine's telemetry, keeps a bounded ring of the most recent
//! events, and on demand dumps everything to one JSON artifact:
//!
//! ```json
//! {
//!   "schema": "bgpvcg-flight-v1",
//!   "reason": "stage-limit-exceeded",
//!   "stage": 1000,
//!   "summary": {"stages": 1000, "messages": 5240},
//!   "snapshots": [{"node": 0, "inbox_depth": 3, "down": 0}],
//!   "events_recorded": 5311,
//!   "events_dropped": 5055,
//!   "recent_events": [{"type": "StageStart", "stage": 999}]
//! }
//! ```
//!
//! Every entry of `recent_events` is the event's exact JSONL object, so
//! [`validate_dump`] can re-check each against the golden trace schema —
//! a flight dump is schema-valid evidence, not a best-effort debug print.
//! Engines dump automatically (see `SyncEngine::attach_flight_recorder`
//! and `ChaosEngine::attach_flight_recorder` in the BGP crate); the
//! walkthrough in `docs/OBSERVABILITY.md` reads one end to end.

use crate::event::TraceEvent;
use crate::json::{parse, JsonValue};
use crate::schema::Schema;
use crate::sink::{RingBufferSink, TraceSink};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Schema tag of the flight-dump artifact.
pub const DUMP_SCHEMA: &str = "bgpvcg-flight-v1";

/// Default bound on the event ring: enough to cover the tail of a stalled
/// run without letting a pathological trace eat memory.
pub const DEFAULT_CAPACITY: usize = 256;

/// Reason string for a synchronous run that exceeded its stage horizon.
pub const REASON_STAGE_LIMIT: &str = "stage-limit-exceeded";

/// Reason string for a chaos run that failed to restabilize in budget.
pub const REASON_NOT_STABILIZED: &str = "chaos-not-stabilized";

/// Reason string for a dump triggered by the online auditor catching a
/// node advertising something the honest protocol would not have.
pub const REASON_AUDIT_VIOLATION: &str = "audit-violation";

/// Reason string for a dump armed by the streaming health monitor's stall
/// detector — a post-mortem captured *before* the hard stage-limit overrun
/// would fire (see the `health` module and `docs/OBSERVABILITY.md`).
pub const REASON_HEALTH_STALL: &str = "health-stall";

/// One engine entity's state at dump time, as flat `key: value` gauges
/// (e.g. a node's inbox depth, a session's unacked backlog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSnapshot {
    /// The AS the snapshot describes.
    pub node: u32,
    /// Gauge fields, in insertion order.
    pub fields: Vec<(&'static str, u64)>,
}

/// A bounded in-memory tail of a run's trace plus the machinery to dump it
/// as a schema-valid JSON artifact.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Arc<RingBufferSink>,
    path: PathBuf,
}

impl FlightRecorder {
    /// Creates a recorder that will dump to `path`, retaining the most
    /// recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(path: PathBuf, capacity: usize) -> Self {
        FlightRecorder {
            ring: Arc::new(RingBufferSink::new(capacity)),
            path,
        }
    }

    /// The sink to tee the engine's telemetry into.
    pub fn sink(&self) -> Arc<dyn TraceSink> {
        Arc::clone(&self.ring) as Arc<dyn TraceSink>
    }

    /// The artifact path this recorder dumps to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events currently retained (oldest first).
    pub fn recent_events(&self) -> Vec<TraceEvent> {
        self.ring.events()
    }

    /// Writes the dump artifact and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn dump(
        &self,
        reason: &str,
        stage: u64,
        summary: &[(&str, u64)],
        snapshots: &[StateSnapshot],
    ) -> std::io::Result<PathBuf> {
        let events = self.ring.events();
        let recorded = self.ring.total_recorded();
        let mut out = String::with_capacity(128 * (events.len() + snapshots.len() + 2));
        out.push_str("{\"schema\":\"");
        out.push_str(DUMP_SCHEMA);
        out.push_str("\",\"reason\":\"");
        // Reasons are module constants (no escaping needed), but guard
        // against a caller passing arbitrary text anyway.
        for c in reason.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push(' '),
                c => out.push(c),
            }
        }
        out.push_str("\",\"stage\":");
        out.push_str(&stage.to_string());
        out.push_str(",\"summary\":{");
        for (i, (key, value)) in summary.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{key}\":{value}"));
        }
        out.push_str("},\"snapshots\":[");
        for (i, snapshot) in snapshots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"node\":{}", snapshot.node));
            for (key, value) in &snapshot.fields {
                out.push_str(&format!(",\"{key}\":{value}"));
            }
            out.push('}');
        }
        out.push_str("],\"events_recorded\":");
        out.push_str(&recorded.to_string());
        out.push_str(",\"events_dropped\":");
        out.push_str(&(recorded - events.len() as u64).to_string());
        out.push_str(",\"recent_events\":[");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}");
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&self.path, out)?;
        Ok(self.path.clone())
    }
}

/// Validates a flight-dump artifact: the schema tag, required top-level
/// fields, snapshot shape, consistent recorded/dropped accounting, and —
/// the point of the exercise — every retained event against the golden
/// trace schema.
///
/// # Errors
///
/// A message naming the first violation.
pub fn validate_dump(text: &str) -> Result<(), String> {
    let value = parse(text).map_err(|e| e.to_string())?;
    if value.get("schema").and_then(JsonValue::as_str) != Some(DUMP_SCHEMA) {
        return Err(format!("schema tag must be {DUMP_SCHEMA:?}"));
    }
    if value
        .get("reason")
        .and_then(JsonValue::as_str)
        .is_none_or(str::is_empty)
    {
        return Err("reason must be a non-empty string".to_string());
    }
    let stage = value
        .get("stage")
        .and_then(JsonValue::as_u64)
        .ok_or("stage must be a uint")?;
    let Some(JsonValue::Object(summary)) = value.get("summary") else {
        return Err("summary must be an object".to_string());
    };
    for (key, entry) in summary {
        if entry.as_u64().is_none() {
            return Err(format!("summary field {key} must be a uint"));
        }
    }
    let Some(JsonValue::Array(snapshots)) = value.get("snapshots") else {
        return Err("snapshots must be an array".to_string());
    };
    for snapshot in snapshots {
        let JsonValue::Object(fields) = snapshot else {
            return Err("snapshots must hold objects".to_string());
        };
        if snapshot.get("node").and_then(JsonValue::as_u64).is_none() {
            return Err("snapshot entries need a node id".to_string());
        }
        for (key, entry) in fields {
            if entry.as_u64().is_none() {
                return Err(format!("snapshot field {key} must be a uint"));
            }
        }
    }
    let recorded = value
        .get("events_recorded")
        .and_then(JsonValue::as_u64)
        .ok_or("events_recorded must be a uint")?;
    let dropped = value
        .get("events_dropped")
        .and_then(JsonValue::as_u64)
        .ok_or("events_dropped must be a uint")?;
    let Some(JsonValue::Array(events)) = value.get("recent_events") else {
        return Err("recent_events must be an array".to_string());
    };
    if dropped + events.len() as u64 != recorded {
        return Err("dropped + retained must equal recorded".to_string());
    }
    let schema = Schema::golden();
    let mut last_stage = None;
    for (idx, event) in events.iter().enumerate() {
        // `render` re-serializes the parsed object as one canonical line,
        // which the line schema checks field-by-field (order-independent).
        schema
            .validate_line(&event.render())
            .map_err(|e| format!("recent_events[{idx}]: {e}"))?;
        last_stage = event.get("stage").and_then(JsonValue::as_u64);
    }
    // The tail must actually reach the stall: the last retained event may
    // not be from a later stage than the dump claims.
    if let Some(last) = last_stage {
        if last > stage {
            return Err("recent_events end beyond the dump's stage".to_string());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(dir: &Path) -> FlightRecorder {
        FlightRecorder::new(dir.join("flight.json"), 4)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bgpvcg-flight-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn dump_is_bounded_and_validates() {
        let dir = temp_dir("basic");
        let recorder = recorder(&dir);
        let sink = recorder.sink();
        for stage in 1..=9 {
            sink.record(&TraceEvent::StageStart { stage });
        }
        let path = recorder
            .dump(
                REASON_STAGE_LIMIT,
                9,
                &[("stages", 9), ("messages", 120)],
                &[StateSnapshot {
                    node: 0,
                    fields: vec![("inbox_depth", 3), ("down", 0)],
                }],
            )
            .expect("dump writes");
        let text = std::fs::read_to_string(&path).expect("artifact readable");
        validate_dump(&text).expect("artifact validates");
        let value = parse(&text).unwrap();
        let JsonValue::Array(events) = value.get("recent_events").unwrap().clone() else {
            panic!("recent_events must be an array");
        };
        assert_eq!(events.len(), 4, "ring capacity bounds the tail");
        assert_eq!(
            value.get("events_dropped").and_then(JsonValue::as_u64),
            Some(5)
        );
        assert_eq!(
            events[0].get("stage").and_then(JsonValue::as_u64),
            Some(6),
            "oldest retained event survives, earlier ones were evicted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validator_rejects_tampered_dumps() {
        let dir = temp_dir("tamper");
        let recorder = recorder(&dir);
        recorder.sink().record(&TraceEvent::StageStart { stage: 2 });
        let path = recorder
            .dump(REASON_NOT_STABILIZED, 2, &[("stages", 2)], &[])
            .expect("dump writes");
        let text = std::fs::read_to_string(&path).expect("artifact readable");
        validate_dump(&text).expect("pristine dump validates");
        for (from, to, why) in [
            (DUMP_SCHEMA, "bogus-v0", "schema tag"),
            ("\"events_dropped\":0", "\"events_dropped\":7", "accounting"),
            (
                "{\"type\":\"StageStart\",\"stage\":2}",
                "{\"type\":\"StageStart\"}",
                "event misses schema field",
            ),
            (
                "\"stage\":2,\"summary\"",
                "\"stage\":1,\"summary\"",
                "tail beyond stage",
            ),
        ] {
            let broken = text.replace(from, to);
            assert_ne!(broken, text, "{why}: replacement must apply");
            assert!(validate_dump(&broken).is_err(), "{why} must be rejected");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_ring_still_dumps_cleanly() {
        let dir = temp_dir("empty");
        let recorder = recorder(&dir);
        let path = recorder
            .dump(REASON_STAGE_LIMIT, 0, &[], &[])
            .expect("dump writes");
        let text = std::fs::read_to_string(&path).expect("artifact readable");
        validate_dump(&text).expect("empty dump validates");
        std::fs::remove_dir_all(&dir).ok();
    }
}
