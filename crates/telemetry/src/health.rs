//! Streaming convergence-health detectors (SLO monitors).
//!
//! [`HealthMonitor`] folds the live [`TraceEvent`] stream — no replay, no
//! buffering of the whole trace — and maintains three detectors plus
//! per-destination convergence-latency sketches
//! (`docs/OBSERVABILITY.md` §health-SLOs):
//!
//! * **Route oscillation** (detector 0): a `(node, dest)` pair re-selects
//!   a route it recently moved away from at least
//!   [`HealthConfig::flap_revisits`] times inside a
//!   [`HealthConfig::flap_window`]-stage window. FPSS convergence is
//!   monotone, so any revisit at all means the inputs are flapping
//!   (costs, links, or an adversary), and repeated revisits are the
//!   instability signature the related route-incentive literature warns
//!   about.
//! * **Price-churn spike** (detector 1): the number of `PriceRelaxed`
//!   events in one stage exceeds [`HealthConfig::churn_factor`] × the
//!   trailing mean over the previous [`HealthConfig::churn_window`] full
//!   stages (and an absolute floor, so small reconvergences never
//!   alarm). Warm-up stages — before one full window of history exists —
//!   are never judged, which keeps honest initial convergence quiet.
//! * **Convergence stall** (detector 2): stages keep starting but no
//!   advertised state (route, price, withdrawal) has changed for more
//!   than [`HealthConfig::stall_stages`] stages. Engines use
//!   [`HealthMonitor::stalled`] to arm the divergence flight recorder
//!   with a [`crate::flight::REASON_HEALTH_STALL`] post-mortem *before*
//!   the hard stage-limit overrun destroys the evidence.
//!
//! Each detector reports **at most one finding per run** (the first
//! trigger, with the measured count), so "exactly the seeded findings"
//! is a meaningful acceptance check and honest runs assert zero findings.
//!
//! Everything is stage-denominated integer arithmetic — no wall clock —
//! so serial and parallel engines folding the same (deterministically
//! ordered) event stream produce bit-identical verdicts and sketches.

use crate::event::TraceEvent;
use crate::series::QuantileSketch;
use crate::sink::TraceSink;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Detector code for route-flap / oscillation findings.
pub const DETECTOR_OSCILLATION: u32 = 0;
/// Detector code for price-churn spike findings.
pub const DETECTOR_CHURN: u32 = 1;
/// Detector code for convergence-stall findings.
pub const DETECTOR_STALL: u32 = 2;

/// `node`/`dest` value for findings that concern the whole run.
pub const RUN_WIDE: u32 = u32::MAX;

/// Thresholds for the streaming detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Revisits of a recently-abandoned route that count as oscillation.
    pub flap_revisits: u64,
    /// Window (in stages) revisits must fall within.
    pub flap_window: u64,
    /// Trailing stages forming the churn baseline.
    pub churn_window: u64,
    /// Spike multiplier over the trailing mean.
    pub churn_factor: u64,
    /// Absolute floor: a stage below this many relaxations never spikes.
    pub churn_min_events: u64,
    /// Consecutive stages without advertised-state change that count as a
    /// stall.
    pub stall_stages: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            flap_revisits: 3,
            flap_window: 32,
            churn_window: 8,
            churn_factor: 4,
            churn_min_events: 32,
            stall_stages: 64,
        }
    }
}

/// One detector firing: what crossed which threshold, where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthFinding {
    /// Detector code ([`DETECTOR_OSCILLATION`] etc.).
    pub detector: u32,
    /// Stage at which the detector fired.
    pub stage: u64,
    /// Concerned AS ([`RUN_WIDE`] for run-wide findings).
    pub node: u32,
    /// Concerned destination ([`RUN_WIDE`] for run-wide findings).
    pub dest: u32,
    /// The measured quantity.
    pub count: u64,
    /// The threshold it crossed.
    pub threshold: u64,
}

impl HealthFinding {
    /// The trace emission for this finding.
    pub fn to_event(&self) -> TraceEvent {
        TraceEvent::HealthVerdict {
            stage: self.stage,
            detector: self.detector,
            node: self.node,
            dest: self.dest,
            count: self.count,
            threshold: self.threshold,
        }
    }

    /// Human-readable detector name.
    pub fn detector_name(&self) -> &'static str {
        detector_name(self.detector)
    }
}

/// Human-readable name for a detector code.
pub fn detector_name(detector: u32) -> &'static str {
    match detector {
        DETECTOR_OSCILLATION => "oscillation",
        DETECTOR_CHURN => "churn-spike",
        DETECTOR_STALL => "stall",
        _ => "unknown",
    }
}

/// Per-(node, dest) route history backing the oscillation detector. Route
/// identity is the advertised `(hops, path_cost)` signature.
#[derive(Debug, Clone, Copy)]
struct RouteHistory {
    last: (u32, u64),
    before_last: Option<(u32, u64)>,
    revisits: u64,
    window_start: u64,
}

/// Streaming health monitor; fold events with [`HealthMonitor::fold`].
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: HealthConfig,
    routes: BTreeMap<(u32, u32), RouteHistory>,
    /// Stage currently being filled by `relax_in_stage`.
    current_stage: u64,
    relax_in_stage: u64,
    /// Completed-stage relaxation counts, most recent last, capped at
    /// `churn_window`.
    churn_history: Vec<u64>,
    last_progress_stage: u64,
    /// Stage of the last advertised-state change per destination, folded
    /// into `latency` at each quiescence.
    last_change_by_dest: BTreeMap<u32, u64>,
    latency: BTreeMap<u32, QuantileSketch>,
    findings: Vec<HealthFinding>,
    fired: [bool; 3],
    stages_seen: u64,
}

impl HealthMonitor {
    /// A monitor with the given thresholds.
    pub fn new(config: HealthConfig) -> Self {
        HealthMonitor {
            config,
            routes: BTreeMap::new(),
            current_stage: 0,
            relax_in_stage: 0,
            churn_history: Vec::new(),
            last_progress_stage: 0,
            last_change_by_dest: BTreeMap::new(),
            latency: BTreeMap::new(),
            findings: Vec::new(),
            fired: [false; 3],
            stages_seen: 0,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Folds one trace event into the detectors.
    pub fn fold(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::StageStart { stage } => self.on_stage_start(stage),
            TraceEvent::RouteSelected {
                node,
                dest,
                stage,
                hops,
                path_cost,
                ..
            } => {
                self.on_progress(dest, stage);
                self.on_route_selected(node, dest, stage, (hops, path_cost));
            }
            TraceEvent::PriceRelaxed { dest, stage, .. } => {
                self.on_progress(dest, stage);
                if stage == self.current_stage {
                    self.relax_in_stage += 1;
                }
            }
            TraceEvent::Withdrawn { dest, stage, .. } => self.on_progress(dest, stage),
            TraceEvent::Quiescent { .. } => self.on_quiescent(),
            _ => {}
        }
    }

    fn on_stage_start(&mut self, stage: u64) {
        self.stages_seen += 1;
        // Judge the stage that just completed against the trailing baseline,
        // then roll it into the history.
        if stage > self.current_stage && self.current_stage > 0 {
            self.judge_churn();
            if self.churn_history.len() == self.config.churn_window as usize {
                self.churn_history.remove(0);
            }
            self.churn_history.push(self.relax_in_stage);
        }
        self.current_stage = stage;
        self.relax_in_stage = 0;
        // Stall: stages keep starting with no advertised-state change.
        let quiet = stage.saturating_sub(self.last_progress_stage);
        // lint:allow(bounds: fired is [bool; DETECTORS] and the detector codes are the fixed indices 0..DETECTORS)
        if quiet > self.config.stall_stages && !self.fired[DETECTOR_STALL as usize] {
            self.fire(HealthFinding {
                detector: DETECTOR_STALL,
                stage,
                node: RUN_WIDE,
                dest: RUN_WIDE,
                count: quiet,
                threshold: self.config.stall_stages,
            });
        }
    }

    fn judge_churn(&mut self) {
        if self.churn_history.len() < self.config.churn_window as usize
            // lint:allow(bounds: fired is [bool; DETECTORS] and the detector codes are the fixed indices 0..DETECTORS)
            || self.fired[DETECTOR_CHURN as usize]
        {
            return;
        }
        let baseline: u64 =
            self.churn_history.iter().sum::<u64>() / self.config.churn_window.max(1);
        let threshold = (baseline * self.config.churn_factor).max(self.config.churn_min_events);
        if self.relax_in_stage > threshold {
            self.fire(HealthFinding {
                detector: DETECTOR_CHURN,
                stage: self.current_stage,
                node: RUN_WIDE,
                dest: RUN_WIDE,
                count: self.relax_in_stage,
                threshold,
            });
        }
    }

    fn on_progress(&mut self, dest: u32, stage: u64) {
        self.last_progress_stage = self.last_progress_stage.max(stage);
        let entry = self.last_change_by_dest.entry(dest).or_insert(stage);
        *entry = (*entry).max(stage);
    }

    fn on_route_selected(&mut self, node: u32, dest: u32, stage: u64, sig: (u32, u64)) {
        let config = self.config;
        let mut finding = None;
        match self.routes.get_mut(&(node, dest)) {
            None => {
                self.routes.insert(
                    (node, dest),
                    RouteHistory {
                        last: sig,
                        before_last: None,
                        revisits: 0,
                        window_start: stage,
                    },
                );
            }
            Some(history) => {
                if sig == history.last {
                    return; // re-advertisement of the same route, not a flap
                }
                if stage.saturating_sub(history.window_start) > config.flap_window {
                    history.revisits = 0;
                    history.window_start = stage;
                }
                if history.before_last == Some(sig) {
                    history.revisits += 1;
                    if history.revisits >= config.flap_revisits {
                        finding = Some(HealthFinding {
                            detector: DETECTOR_OSCILLATION,
                            stage,
                            node,
                            dest,
                            count: history.revisits,
                            threshold: config.flap_revisits,
                        });
                    }
                }
                history.before_last = Some(history.last);
                history.last = sig;
            }
        }
        if let Some(finding) = finding {
            // lint:allow(bounds: fired is [bool; DETECTORS] and the detector codes are the fixed indices 0..DETECTORS)
            if !self.fired[DETECTOR_OSCILLATION as usize] {
                self.fire(finding);
            }
        }
    }

    fn on_quiescent(&mut self) {
        // Fold each destination's settle stage into its latency sketch and
        // reset for the next convergence episode on the same monitor.
        for (&dest, &stage) in &self.last_change_by_dest {
            self.latency.entry(dest).or_default().record(stage);
        }
        self.last_change_by_dest.clear();
    }

    fn fire(&mut self, finding: HealthFinding) {
        // lint:allow(bounds: findings are only constructed with the fixed detector codes 0..DETECTORS)
        self.fired[finding.detector as usize] = true;
        self.findings.push(finding);
    }

    /// Findings so far, in firing order (at most one per detector).
    pub fn findings(&self) -> &[HealthFinding] {
        &self.findings
    }

    /// True once the stall detector has fired — the engine's cue to dump a
    /// [`crate::flight::REASON_HEALTH_STALL`] post-mortem.
    pub fn stalled(&self) -> bool {
        // lint:allow(bounds: fired is [bool; DETECTORS] and the detector codes are the fixed indices 0..DETECTORS)
        self.fired[DETECTOR_STALL as usize]
    }

    /// Per-destination convergence-latency sketches (one sample per
    /// quiescence).
    pub fn latency(&self) -> &BTreeMap<u32, QuantileSketch> {
        &self.latency
    }

    /// Stages observed so far.
    pub fn stages_seen(&self) -> u64 {
        self.stages_seen
    }

    /// Schema-pinned report JSON (`bgpvcg-health-v1`): findings in firing
    /// order plus per-destination latency quantiles. Stage-denominated
    /// throughout — no timing fields — so serial and parallel runs of the
    /// same scenario serialize byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.findings.len() * 96);
        out.push_str("{\"version\":1,\"schema\":\"bgpvcg-health-v1\",\"stages\":");
        out.push_str(&self.stages_seen.to_string());
        out.push_str(",\"findings\":[");
        for (i, finding) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"detector\":\"");
            out.push_str(finding.detector_name());
            out.push_str("\",\"stage\":");
            out.push_str(&finding.stage.to_string());
            out.push_str(",\"node\":");
            out.push_str(&finding.node.to_string());
            out.push_str(",\"dest\":");
            out.push_str(&finding.dest.to_string());
            out.push_str(",\"count\":");
            out.push_str(&finding.count.to_string());
            out.push_str(",\"threshold\":");
            out.push_str(&finding.threshold.to_string());
            out.push('}');
        }
        out.push_str("],\"destinations\":[");
        for (i, (dest, sketch)) in self.latency.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"dest\":");
            out.push_str(&dest.to_string());
            out.push_str(",\"latency\":");
            out.push_str(&sketch.to_json());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// A [`TraceSink`] adapter around a [`HealthMonitor`], so engines can tee
/// the monitor into their telemetry stream exactly like a flight recorder:
/// every recorded event is folded as it happens, and the engine polls
/// [`HealthSink::stalled`] between stages and drains freshly-fired
/// findings into `HealthVerdict` trace emissions at run end.
#[derive(Debug)]
pub struct HealthSink {
    state: Mutex<HealthSinkState>,
}

#[derive(Debug)]
struct HealthSinkState {
    monitor: HealthMonitor,
    /// Findings already drained by [`HealthSink::drain_new_findings`].
    emitted: usize,
}

impl HealthSink {
    /// A sink folding into a fresh monitor with the given thresholds.
    pub fn new(config: HealthConfig) -> Self {
        HealthSink {
            state: Mutex::new(HealthSinkState {
                monitor: HealthMonitor::new(config),
                emitted: 0,
            }),
        }
    }

    /// True once the stall detector has fired.
    pub fn stalled(&self) -> bool {
        self.lock().monitor.stalled()
    }

    /// Findings fired since the previous drain, in firing order. Engines
    /// call this when emitting `HealthVerdict` events so each finding is
    /// traced exactly once even across repeated runs on one sink.
    pub fn drain_new_findings(&self) -> Vec<HealthFinding> {
        let mut state = self.lock();
        let fresh = state.monitor.findings()[state.emitted..].to_vec();
        state.emitted = state.monitor.findings().len();
        fresh
    }

    /// All findings so far, in firing order.
    pub fn findings(&self) -> Vec<HealthFinding> {
        self.lock().monitor.findings().to_vec()
    }

    /// A point-in-time copy of the underlying monitor.
    pub fn snapshot(&self) -> HealthMonitor {
        self.lock().monitor.clone()
    }

    /// The monitor's schema-pinned report JSON.
    pub fn to_json(&self) -> String {
        self.lock().monitor.to_json()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HealthSinkState> {
        // lint:allow(poisoning requires a prior panic while folding; propagating it is the only sound move)
        self.state.lock().expect("health sink poisoned")
    }
}

impl TraceSink for HealthSink {
    fn record(&self, event: &TraceEvent) {
        self.lock().monitor.fold(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(node: u32, dest: u32, stage: u64, hops: u32, cost: u64) -> TraceEvent {
        TraceEvent::RouteSelected {
            node,
            dest,
            stage,
            hops,
            path_cost: cost,
            cause: 0,
            effect: 1,
        }
    }

    #[test]
    fn steady_convergence_raises_no_findings() {
        let mut monitor = HealthMonitor::new(HealthConfig::default());
        for stage in 1..=10u64 {
            monitor.fold(&TraceEvent::StageStart { stage });
            monitor.fold(&select(1, 2, stage, 2, 100 - stage));
        }
        monitor.fold(&TraceEvent::Quiescent {
            stage: 10,
            messages: 10,
        });
        assert!(monitor.findings().is_empty());
        assert!(!monitor.stalled());
        assert_eq!(monitor.latency()[&2].count(), 1);
        assert_eq!(monitor.latency()[&2].max(), 10);
    }

    #[test]
    fn oscillation_fires_once_after_enough_revisits() {
        let config = HealthConfig {
            flap_revisits: 3,
            ..HealthConfig::default()
        };
        let mut monitor = HealthMonitor::new(config);
        // Route toggles A (2 hops, 10) <-> B (3 hops, 9): each return to a
        // recently-held signature is one revisit.
        for stage in 1..=12u64 {
            monitor.fold(&TraceEvent::StageStart { stage });
            let (hops, cost) = if stage % 2 == 0 { (2, 10) } else { (3, 9) };
            monitor.fold(&select(7, 1, stage, hops, cost));
        }
        let findings = monitor.findings();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].detector, DETECTOR_OSCILLATION);
        assert_eq!((findings[0].node, findings[0].dest), (7, 1));
        assert_eq!(findings[0].count, 3);
    }

    #[test]
    fn churn_spike_needs_a_full_baseline_window() {
        let config = HealthConfig {
            churn_window: 3,
            churn_factor: 2,
            churn_min_events: 4,
            ..HealthConfig::default()
        };
        let relax = |stage: u64| TraceEvent::PriceRelaxed {
            node: 1,
            dest: 2,
            k: 3,
            stage,
            old: 10,
            new: 9,
            cause: 0,
            effect: 1,
        };
        let mut monitor = HealthMonitor::new(config);
        // A huge first stage during warm-up must NOT alarm.
        monitor.fold(&TraceEvent::StageStart { stage: 1 });
        for _ in 0..100 {
            monitor.fold(&relax(1));
        }
        // Three quiet stages build the baseline (mean 1).
        for stage in 2..=4u64 {
            monitor.fold(&TraceEvent::StageStart { stage });
            monitor.fold(&relax(stage));
        }
        assert!(monitor.findings().is_empty());
        // Stage 5 spikes: 40 > max(1 * 2, 4).
        monitor.fold(&TraceEvent::StageStart { stage: 5 });
        for _ in 0..40 {
            monitor.fold(&relax(5));
        }
        monitor.fold(&TraceEvent::StageStart { stage: 6 });
        let findings = monitor.findings();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].detector, DETECTOR_CHURN);
        assert_eq!(findings[0].count, 40);
    }

    #[test]
    fn stall_fires_after_quiet_stages_and_sets_stalled() {
        let config = HealthConfig {
            stall_stages: 5,
            ..HealthConfig::default()
        };
        let mut monitor = HealthMonitor::new(config);
        monitor.fold(&TraceEvent::StageStart { stage: 1 });
        monitor.fold(&select(1, 2, 1, 2, 9));
        for stage in 2..=6u64 {
            monitor.fold(&TraceEvent::StageStart { stage });
        }
        assert!(!monitor.stalled());
        monitor.fold(&TraceEvent::StageStart { stage: 7 });
        assert!(monitor.stalled());
        let findings = monitor.findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].detector, DETECTOR_STALL);
        assert_eq!(findings[0].count, 6);
        assert_eq!(findings[0].threshold, 5);
        // And it stays a single finding however long the stall continues.
        for stage in 8..=20u64 {
            monitor.fold(&TraceEvent::StageStart { stage });
        }
        assert_eq!(monitor.findings().len(), 1);
    }

    #[test]
    fn sink_folds_records_and_drains_findings_once() {
        let config = HealthConfig {
            stall_stages: 2,
            ..HealthConfig::default()
        };
        let sink = HealthSink::new(config);
        sink.record(&TraceEvent::StageStart { stage: 1 });
        sink.record(&select(1, 2, 1, 2, 9));
        for stage in 2..=4u64 {
            sink.record(&TraceEvent::StageStart { stage });
        }
        assert!(sink.stalled());
        let fresh = sink.drain_new_findings();
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].detector, DETECTOR_STALL);
        assert!(sink.drain_new_findings().is_empty());
        assert_eq!(sink.findings().len(), 1);
        assert_eq!(sink.snapshot().findings().len(), 1);
        assert!(sink.to_json().contains("\"stall\""));
    }

    #[test]
    fn report_json_is_deterministic_and_schema_pinned() {
        let mut monitor = HealthMonitor::new(HealthConfig::default());
        monitor.fold(&TraceEvent::StageStart { stage: 1 });
        monitor.fold(&select(1, 2, 1, 2, 9));
        monitor.fold(&TraceEvent::Quiescent {
            stage: 1,
            messages: 1,
        });
        let json = monitor.to_json();
        assert!(json.starts_with("{\"version\":1,\"schema\":\"bgpvcg-health-v1\""));
        assert!(json.contains("\"findings\":[]"));
        assert!(json.contains("{\"dest\":2,\"latency\":{\"count\":1"));
        assert_eq!(json, monitor.clone().to_json());
    }
}
