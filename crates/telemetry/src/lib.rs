//! Workspace telemetry: structured convergence tracing and metrics.
//!
//! This crate is the observability substrate for the BGP-based VCG pricing
//! mechanism (Feigenbaum–Papadimitriou–Sami–Shenker, PODC 2002). It is
//! deliberately **std-only** — the workspace's vendored serde is a no-op
//! stand-in, so every wire format here is hand-rolled and self-validated.
//!
//! Four layers:
//!
//! 1. **Metrics** ([`MetricsRegistry`]): named counters, gauges, and
//!    histograms with atomic updates, exposed via
//!    [`expose::prometheus_text`] and [`expose::json`].
//! 2. **Tracing** ([`TraceEvent`], [`TraceSink`]): a typed event stream
//!    (`StageStart`, `RouteSelected`, `PriceRelaxed`, `Withdrawn`,
//!    `Quiescent`, plus the fault vocabulary `FaultInjected`,
//!    `Retransmit`, `SessionReset`, `NodeRestart`) keyed by
//!    node/destination/stage, written as JSONL
//!    ([`JsonlSink`]) or kept in memory ([`RingBufferSink`]), and checked
//!    against the golden schema in `trace-schema.json` ([`schema::Schema`]).
//! 3. **Provenance** ([`causal::CausalDag`]): the causal `(cause, effect)`
//!    ids carried by route/price events rebuilt into per-run convergence
//!    DAGs — acyclicity and root validation, critical-path extraction,
//!    amplification and price-churn attribution — plus the divergence
//!    flight recorder ([`flight::FlightRecorder`]) that dumps the tail of
//!    a stalled run as one schema-valid JSON artifact.
//! 4. **Time** ([`Clock`]): injectable nanosecond sources so per-stage wall
//!    time can be measured for real ([`SystemClock`]) or scripted in tests
//!    ([`ManualClock`]).
//!
//! The [`Telemetry`] handle bundles all three behind one cheaply cloneable
//! value that engines and experiment binaries thread through their run
//! loops.
//!
//! # Example
//!
//! ```
//! use bgpvcg_telemetry::{Telemetry, TraceEvent};
//!
//! let (telemetry, ring) = Telemetry::ring(64);
//! telemetry.counter("bgp_messages_total").add(3);
//! telemetry.record(&TraceEvent::StageStart { stage: 1 });
//! assert_eq!(ring.events().len(), 1);
//! assert_eq!(telemetry.snapshot().counters["bgp_messages_total"], 3);
//! ```

#![forbid(unsafe_code)]

pub mod causal;
pub mod clock;
pub mod event;
pub mod expose;
pub mod flight;
pub mod health;
pub mod json;
pub mod profile;
pub mod registry;
pub mod schema;
pub mod series;
pub mod sink;

pub use causal::{CausalDag, CausalError, CausalSummary};
pub use clock::{Clock, ManualClock, SystemClock};
pub use event::{TraceEvent, INFINITE};
pub use flight::{FlightRecorder, StateSnapshot};
pub use health::{HealthConfig, HealthFinding, HealthMonitor, HealthSink};
pub use profile::{SpanId, SpanProfiler};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    DEFAULT_NANOS_BOUNDS,
};
pub use schema::Schema;
pub use series::{QuantileSketch, TimeSeries};
pub use sink::{JsonlSink, NullSink, RingBufferSink, TeeSink, TraceSink};

use std::path::Path;
use std::sync::Arc;

/// The bundled observability handle: a metrics registry, a trace sink, and
/// a clock, shared by reference so clones are cheap and all observe the
/// same run.
#[derive(Debug, Clone)]
pub struct Telemetry {
    registry: Arc<MetricsRegistry>,
    sink: Arc<dyn TraceSink>,
    clock: Arc<dyn Clock>,
}

impl Telemetry {
    /// Creates a handle around the given sink, with a fresh registry and a
    /// [`SystemClock`].
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Telemetry {
            registry: Arc::new(MetricsRegistry::new()),
            sink,
            clock: Arc::new(SystemClock::new()),
        }
    }

    /// Metrics-only handle: traces are discarded by a [`NullSink`].
    pub fn null() -> Self {
        Telemetry::new(Arc::new(NullSink))
    }

    /// In-memory handle holding the most recent `capacity` events; also
    /// returns the ring so the caller can read the events back.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn ring(capacity: usize) -> (Self, Arc<RingBufferSink>) {
        let ring = Arc::new(RingBufferSink::new(capacity));
        (
            Telemetry::new(Arc::clone(&ring) as Arc<dyn TraceSink>),
            ring,
        )
    }

    /// File-backed handle writing JSONL trace lines to `path` (truncated).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn jsonl_file(path: &Path) -> std::io::Result<Self> {
        Ok(Telemetry::new(Arc::new(JsonlSink::create(path)?)))
    }

    /// Replaces the clock (builder-style), keeping registry and sink.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Returns a handle sharing this one's registry and clock whose event
    /// stream additionally feeds `extra` — e.g. keep streaming JSONL to
    /// disk while an in-memory ring captures the same run for analysis.
    pub fn tee(&self, extra: Arc<dyn TraceSink>) -> Self {
        Telemetry {
            registry: Arc::clone(&self.registry),
            sink: Arc::new(TeeSink::new(Arc::clone(&self.sink), extra)),
            clock: Arc::clone(&self.clock),
        }
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Shorthand for `registry().counter(name)`.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Shorthand for `registry().gauge(name)`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// Shorthand for `registry().histogram(name)` (nanosecond bounds).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(name)
    }

    /// Copies every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Records one trace event.
    pub fn record(&self, event: &TraceEvent) {
        self.sink.record(event);
    }

    /// Flushes the trace sink.
    pub fn flush(&self) {
        self.sink.flush();
    }

    /// Nanoseconds on the handle's clock (differences only).
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// The shared clock itself, for components that need to timestamp
    /// outside this handle (e.g. the span profiler).
    pub fn clock_handle(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_registry_sink_and_clock() {
        let (telemetry, ring) = Telemetry::ring(8);
        let clone = telemetry.clone();
        clone.counter("shared").inc();
        clone.record(&TraceEvent::StageStart { stage: 1 });
        assert_eq!(telemetry.snapshot().counters["shared"], 1);
        assert_eq!(ring.events().len(), 1);
    }

    #[test]
    fn manual_clock_injection_makes_timing_deterministic() {
        let clock = Arc::new(ManualClock::new());
        let telemetry = Telemetry::null().with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let start = telemetry.now_nanos();
        clock.advance(1_500);
        assert_eq!(telemetry.now_nanos() - start, 1_500);
    }

    #[test]
    fn tee_shares_the_registry_and_feeds_both_sinks() {
        let (telemetry, primary) = Telemetry::ring(8);
        let extra = Arc::new(RingBufferSink::new(8));
        let teed = telemetry.tee(Arc::clone(&extra) as Arc<dyn TraceSink>);
        teed.counter("shared").inc();
        teed.record(&TraceEvent::StageStart { stage: 2 });
        assert_eq!(telemetry.snapshot().counters["shared"], 1);
        assert_eq!(primary.events(), extra.events());
        assert_eq!(primary.events().len(), 1);
    }

    #[test]
    fn null_handle_still_counts() {
        let telemetry = Telemetry::null();
        telemetry.record(&TraceEvent::StageStart { stage: 1 });
        telemetry.counter("c").add(2);
        telemetry.flush();
        assert_eq!(telemetry.snapshot().counters["c"], 2);
    }
}
