//! The typed trace-event vocabulary.
//!
//! Every convergence run narrates itself as a stream of these events, keyed
//! by node / destination / stage. The JSONL encoding produced by
//! [`TraceEvent::to_json`] is the wire form consumed by `cargo xtask obs`
//! and validated against the golden schema in `trace-schema.json` (the
//! `trace-schema` lint rule keeps the two in sync).
//!
//! Numeric conventions: AS identities are raw `u32` AS numbers; `stage` is
//! the synchronous engine's 1-based stage counter (0 for pre-stage origin
//! advertisements, and a per-run delivery sequence number on the
//! asynchronous engine, which has no stages); costs and prices are raw
//! `u64` values where `u64::MAX` encodes the protocol's `∞`.

/// Raw encoding of an infinite cost/price (`Cost::INFINITE` upstream).
pub const INFINITE: u64 = u64::MAX;

/// One structured event in a convergence trace.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEvent {
    /// A synchronous stage began (deliveries from stage `stage - 1` are
    /// about to be processed).
    StageStart {
        /// 1-based stage number.
        stage: u64,
    },
    /// A node advertised a (new or changed) selected route.
    RouteSelected {
        /// The advertising AS.
        node: u32,
        /// The destination AS.
        dest: u32,
        /// Stage (or async sequence) of the advertisement.
        stage: u64,
        /// Number of ASes on the advertised path, endpoints included.
        hops: u32,
        /// Advertised transit cost of the path ([`INFINITE`] never occurs
        /// for a selected route).
        path_cost: u64,
        /// Provenance id of the inbound update that triggered this
        /// advertisement (0 = environment: origin advertisement, topology
        /// event, or session full-table sync).
        cause: u64,
        /// Provenance id of the update carrying this advertisement.
        effect: u64,
    },
    /// A node's price entry for transit node `k` toward `dest` changed.
    PriceRelaxed {
        /// The AS holding the price entry.
        node: u32,
        /// The destination AS.
        dest: u32,
        /// The transit AS being priced.
        k: u32,
        /// Stage (or async sequence) of the change.
        stage: u64,
        /// Previous entry ([`INFINITE`] when not yet relaxed).
        old: u64,
        /// New entry.
        new: u64,
        /// Provenance id of the inbound update that triggered this
        /// relaxation (0 = environment).
        cause: u64,
        /// Provenance id of the update carrying the relaxed price.
        effect: u64,
    },
    /// A node advertised that it lost its route to `dest`.
    Withdrawn {
        /// The advertising AS.
        node: u32,
        /// The destination AS.
        dest: u32,
        /// Stage (or async sequence) of the withdrawal.
        stage: u64,
        /// Provenance id of the inbound update that triggered this
        /// withdrawal (0 = environment).
        cause: u64,
        /// Provenance id of the update carrying this withdrawal.
        effect: u64,
    },
    /// The run reached quiescence: no queued messages anywhere.
    Quiescent {
        /// Last stage in which advertised state changed (the convergence
        /// stage the paper bounds).
        stage: u64,
        /// Total messages delivered over the run.
        messages: u64,
    },
    /// A seeded chaos fault perturbed the message fabric (see the
    /// `chaos` module of the BGP crate and `docs/ROBUSTNESS.md`).
    FaultInjected {
        /// Stage (or async sequence) of the injection.
        stage: u64,
        /// The AS whose traffic or state was hit (the sender, for
        /// channel faults).
        node: u32,
        /// The receiving AS for channel faults; `u32::MAX` for node-level
        /// faults (crash, restart).
        peer: u32,
        /// Fault code: 0 drop, 1 duplicate, 2 delay, 3 link flap,
        /// 4 crash.
        fault: u32,
    },
    /// A sender re-sent a sequenced frame that stayed unacknowledged past
    /// the retransmit timer.
    Retransmit {
        /// Stage of the re-send.
        stage: u64,
        /// The retransmitting AS.
        from: u32,
        /// The neighbor the frame is addressed to.
        to: u32,
        /// Sequence number of the re-sent frame.
        seq: u64,
    },
    /// A receiver reset its per-neighbor transport session (a new epoch
    /// was accepted, or the hold timer tore the session down).
    SessionReset {
        /// Stage of the reset.
        stage: u64,
        /// The AS resetting its session state.
        node: u32,
        /// The neighbor the session belongs to.
        peer: u32,
    },
    /// A crashed node rejoined the protocol with empty state.
    NodeRestart {
        /// Stage of the rejoin.
        stage: u64,
        /// The restarting AS.
        node: u32,
    },
    /// A Byzantine adversary perturbed an outgoing advertisement on the
    /// wire (see the `adversary` module of the BGP crate and
    /// `docs/ROBUSTNESS.md`).
    AdversaryInjected {
        /// Stage of the perturbed send.
        stage: u64,
        /// The adversarial (sending) AS.
        node: u32,
        /// The neighbor the perturbed copy was delivered to.
        peer: u32,
        /// Strategy code: 0 price-inflate, 1 cost-understate,
        /// 2 equivocate, 3 replay, 4 phantom-withdraw.
        strategy: u32,
    },
    /// The online auditor caught a node advertising something other than
    /// what the honest protocol, fed the same inbox, would have advertised.
    AuditViolation {
        /// Stage at which the divergence was established.
        stage: u64,
        /// The accused AS.
        node: u32,
        /// The destination whose advertisement diverged.
        dest: u32,
        /// Path cost the honest replay expected ([`INFINITE`] = expected
        /// a withdrawal / no advertisement).
        expected: u64,
        /// Path cost actually seen on the wire ([`INFINITE`] = observed a
        /// withdrawal / silence).
        advertised: u64,
        /// Violation code: 0 divergence from the honest replay,
        /// 1 equivocation across neighbors.
        violation: u32,
    },
    /// An accused node was cut from the topology (NodeDown quarantine) so
    /// the honest residual graph can reconverge.
    NodeQuarantined {
        /// Stage of the quarantine.
        stage: u64,
        /// The quarantined AS.
        node: u32,
    },
    /// A streaming health detector fired (see the `health` module and
    /// `docs/OBSERVABILITY.md` §health-SLOs). At most one verdict per
    /// detector is emitted per run.
    HealthVerdict {
        /// Stage at which the detector fired.
        stage: u64,
        /// Detector code: 0 route oscillation, 1 price-churn spike,
        /// 2 convergence stall.
        detector: u32,
        /// The AS the finding concerns (`u32::MAX` for run-wide findings).
        node: u32,
        /// The destination the finding concerns (`u32::MAX` for run-wide
        /// findings).
        dest: u32,
        /// The measured quantity that crossed the threshold (revisits,
        /// relaxations in the spike stage, quiet stages).
        count: u64,
        /// The configured threshold the measurement crossed.
        threshold: u64,
    },
    /// End-of-run profile line for one engine phase (see the `profile`
    /// module; span ids are the fixed `profile::span` table).
    SpanSummary {
        /// Final stage of the profiled run.
        stage: u64,
        /// Span id in the fixed engine span table.
        span: u32,
        /// Times the span was entered.
        count: u64,
        /// Inclusive nanoseconds (children included).
        total_nanos: u64,
        /// Exclusive nanoseconds (children subtracted).
        self_nanos: u64,
    },
}

impl TraceEvent {
    /// The event's type tag, as it appears in the JSONL `type` field and in
    /// the golden schema.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::StageStart { .. } => "StageStart",
            TraceEvent::RouteSelected { .. } => "RouteSelected",
            TraceEvent::PriceRelaxed { .. } => "PriceRelaxed",
            TraceEvent::Withdrawn { .. } => "Withdrawn",
            TraceEvent::Quiescent { .. } => "Quiescent",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::Retransmit { .. } => "Retransmit",
            TraceEvent::SessionReset { .. } => "SessionReset",
            TraceEvent::NodeRestart { .. } => "NodeRestart",
            TraceEvent::AdversaryInjected { .. } => "AdversaryInjected",
            TraceEvent::AuditViolation { .. } => "AuditViolation",
            TraceEvent::NodeQuarantined { .. } => "NodeQuarantined",
            TraceEvent::HealthVerdict { .. } => "HealthVerdict",
            TraceEvent::SpanSummary { .. } => "SpanSummary",
        }
    }

    /// The stage (or async sequence number) the event is keyed by.
    pub fn stage(&self) -> u64 {
        match *self {
            TraceEvent::StageStart { stage }
            | TraceEvent::RouteSelected { stage, .. }
            | TraceEvent::PriceRelaxed { stage, .. }
            | TraceEvent::Withdrawn { stage, .. }
            | TraceEvent::Quiescent { stage, .. }
            | TraceEvent::FaultInjected { stage, .. }
            | TraceEvent::Retransmit { stage, .. }
            | TraceEvent::SessionReset { stage, .. }
            | TraceEvent::NodeRestart { stage, .. }
            | TraceEvent::AdversaryInjected { stage, .. }
            | TraceEvent::AuditViolation { stage, .. }
            | TraceEvent::NodeQuarantined { stage, .. }
            | TraceEvent::HealthVerdict { stage, .. }
            | TraceEvent::SpanSummary { stage, .. } => stage,
        }
    }

    /// Encodes the event as one compact JSON object (no trailing newline).
    /// All values are numbers except the `type` tag; field order is fixed,
    /// so traces diff cleanly. Every variant is routed through one escaped
    /// key/value writer ([`EventJson`]) so an encoding can never drift from
    /// the golden schema one variant at a time.
    pub fn to_json(&self) -> String {
        let mut w = EventJson::new(self.kind());
        match *self {
            TraceEvent::StageStart { stage } => {
                w.field("stage", stage);
            }
            TraceEvent::RouteSelected {
                node,
                dest,
                stage,
                hops,
                path_cost,
                cause,
                effect,
            } => {
                w.field("node", u64::from(node));
                w.field("dest", u64::from(dest));
                w.field("stage", stage);
                w.field("hops", u64::from(hops));
                w.field("path_cost", path_cost);
                w.field("cause", cause);
                w.field("effect", effect);
            }
            TraceEvent::PriceRelaxed {
                node,
                dest,
                k,
                stage,
                old,
                new,
                cause,
                effect,
            } => {
                w.field("node", u64::from(node));
                w.field("dest", u64::from(dest));
                w.field("k", u64::from(k));
                w.field("stage", stage);
                w.field("old", old);
                w.field("new", new);
                w.field("cause", cause);
                w.field("effect", effect);
            }
            TraceEvent::Withdrawn {
                node,
                dest,
                stage,
                cause,
                effect,
            } => {
                w.field("node", u64::from(node));
                w.field("dest", u64::from(dest));
                w.field("stage", stage);
                w.field("cause", cause);
                w.field("effect", effect);
            }
            TraceEvent::Quiescent { stage, messages } => {
                w.field("stage", stage);
                w.field("messages", messages);
            }
            TraceEvent::FaultInjected {
                stage,
                node,
                peer,
                fault,
            } => {
                w.field("stage", stage);
                w.field("node", u64::from(node));
                w.field("peer", u64::from(peer));
                w.field("fault", u64::from(fault));
            }
            TraceEvent::Retransmit {
                stage,
                from,
                to,
                seq,
            } => {
                w.field("stage", stage);
                w.field("from", u64::from(from));
                w.field("to", u64::from(to));
                w.field("seq", seq);
            }
            TraceEvent::SessionReset { stage, node, peer } => {
                w.field("stage", stage);
                w.field("node", u64::from(node));
                w.field("peer", u64::from(peer));
            }
            TraceEvent::NodeRestart { stage, node } => {
                w.field("stage", stage);
                w.field("node", u64::from(node));
            }
            TraceEvent::AdversaryInjected {
                stage,
                node,
                peer,
                strategy,
            } => {
                w.field("stage", stage);
                w.field("node", u64::from(node));
                w.field("peer", u64::from(peer));
                w.field("strategy", u64::from(strategy));
            }
            TraceEvent::AuditViolation {
                stage,
                node,
                dest,
                expected,
                advertised,
                violation,
            } => {
                w.field("stage", stage);
                w.field("node", u64::from(node));
                w.field("dest", u64::from(dest));
                w.field("expected", expected);
                w.field("advertised", advertised);
                w.field("violation", u64::from(violation));
            }
            TraceEvent::NodeQuarantined { stage, node } => {
                w.field("stage", stage);
                w.field("node", u64::from(node));
            }
            TraceEvent::HealthVerdict {
                stage,
                detector,
                node,
                dest,
                count,
                threshold,
            } => {
                w.field("stage", stage);
                w.field("detector", u64::from(detector));
                w.field("node", u64::from(node));
                w.field("dest", u64::from(dest));
                w.field("count", count);
                w.field("threshold", threshold);
            }
            TraceEvent::SpanSummary {
                stage,
                span,
                count,
                total_nanos,
                self_nanos,
            } => {
                w.field("stage", stage);
                w.field("span", u64::from(span));
                w.field("count", count);
                w.field("total_nanos", total_nanos);
                w.field("self_nanos", self_nanos);
            }
        }
        w.finish()
    }
}

/// The single JSONL object writer behind [`TraceEvent::to_json`]: opens
/// with the escaped `type` tag, appends `"key":value` pairs (every event
/// field is an unsigned integer), and closes the object. Keys and the tag
/// pass through one escaping routine, so no per-variant format string can
/// drift from `trace-schema.json` on its own.
struct EventJson {
    out: String,
}

impl EventJson {
    fn new(kind: &str) -> EventJson {
        let mut out = String::with_capacity(96);
        out.push_str("{\"type\":");
        push_json_string(&mut out, kind);
        EventJson { out }
    }

    fn field(&mut self, key: &str, value: u64) {
        self.out.push(',');
        push_json_string(&mut self.out, key);
        self.out.push(':');
        // u64 formatting never needs escaping; itoa-style inline keeps the
        // writer allocation-light.
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        let mut v = value;
        loop {
            i -= 1;
            // lint:allow(bounds: u64 has at most 20 decimal digits, so i stays in range)
            buf[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        for &digit in &buf[i..] {
            self.out.push(digit as char);
        }
    }

    fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Appends `s` as a quoted, escaped JSON string.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let events = [
            TraceEvent::StageStart { stage: 1 },
            TraceEvent::RouteSelected {
                node: 0,
                dest: 1,
                stage: 1,
                hops: 2,
                path_cost: 0,
                cause: 0,
                effect: 1,
            },
            TraceEvent::PriceRelaxed {
                node: 0,
                dest: 1,
                k: 2,
                stage: 1,
                old: INFINITE,
                new: 3,
                cause: 1,
                effect: 2,
            },
            TraceEvent::Withdrawn {
                node: 0,
                dest: 1,
                stage: 2,
                cause: 2,
                effect: 3,
            },
            TraceEvent::Quiescent {
                stage: 3,
                messages: 42,
            },
            TraceEvent::FaultInjected {
                stage: 4,
                node: 0,
                peer: 1,
                fault: 0,
            },
            TraceEvent::Retransmit {
                stage: 5,
                from: 0,
                to: 1,
                seq: 7,
            },
            TraceEvent::SessionReset {
                stage: 6,
                node: 1,
                peer: 0,
            },
            TraceEvent::NodeRestart { stage: 7, node: 2 },
            TraceEvent::AdversaryInjected {
                stage: 8,
                node: 3,
                peer: 1,
                strategy: 2,
            },
            TraceEvent::AuditViolation {
                stage: 9,
                node: 3,
                dest: 5,
                expected: 4,
                advertised: 2,
                violation: 0,
            },
            TraceEvent::NodeQuarantined { stage: 9, node: 3 },
            TraceEvent::HealthVerdict {
                stage: 10,
                detector: 0,
                node: 1,
                dest: 2,
                count: 4,
                threshold: 3,
            },
            TraceEvent::SpanSummary {
                stage: 10,
                span: 1,
                count: 12,
                total_nanos: 900,
                self_nanos: 600,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(TraceEvent::kind).collect();
        assert_eq!(
            kinds,
            vec![
                "StageStart",
                "RouteSelected",
                "PriceRelaxed",
                "Withdrawn",
                "Quiescent",
                "FaultInjected",
                "Retransmit",
                "SessionReset",
                "NodeRestart",
                "AdversaryInjected",
                "AuditViolation",
                "NodeQuarantined",
                "HealthVerdict",
                "SpanSummary",
            ]
        );
        kinds.dedup();
        assert_eq!(kinds.len(), 14);
    }

    #[test]
    fn json_encoding_is_exact() {
        let event = TraceEvent::PriceRelaxed {
            node: 3,
            dest: 5,
            k: 4,
            stage: 2,
            old: INFINITE,
            new: 7,
            cause: 11,
            effect: 12,
        };
        assert_eq!(
            event.to_json(),
            format!(
                "{{\"type\":\"PriceRelaxed\",\"node\":3,\"dest\":5,\"k\":4,\
                 \"stage\":2,\"old\":{INFINITE},\"new\":7,\"cause\":11,\"effect\":12}}"
            )
        );
    }

    #[test]
    fn writer_escapes_strings_and_formats_extremes() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\n\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\u0001\"");
        let zero = TraceEvent::StageStart { stage: 0 }.to_json();
        assert_eq!(zero, "{\"type\":\"StageStart\",\"stage\":0}");
        let max = TraceEvent::StageStart { stage: u64::MAX }.to_json();
        assert_eq!(
            max,
            format!("{{\"type\":\"StageStart\",\"stage\":{}}}", u64::MAX)
        );
    }

    #[test]
    fn stage_accessor_covers_all_variants() {
        assert_eq!(TraceEvent::StageStart { stage: 9 }.stage(), 9);
        assert_eq!(
            TraceEvent::Quiescent {
                stage: 4,
                messages: 0
            }
            .stage(),
            4
        );
    }
}
