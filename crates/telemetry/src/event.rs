//! The typed trace-event vocabulary.
//!
//! Every convergence run narrates itself as a stream of these events, keyed
//! by node / destination / stage. The JSONL encoding produced by
//! [`TraceEvent::to_json`] is the wire form consumed by `cargo xtask obs`
//! and validated against the golden schema in `trace-schema.json` (the
//! `trace-schema` lint rule keeps the two in sync).
//!
//! Numeric conventions: AS identities are raw `u32` AS numbers; `stage` is
//! the synchronous engine's 1-based stage counter (0 for pre-stage origin
//! advertisements, and a per-run delivery sequence number on the
//! asynchronous engine, which has no stages); costs and prices are raw
//! `u64` values where `u64::MAX` encodes the protocol's `∞`.

/// Raw encoding of an infinite cost/price (`Cost::INFINITE` upstream).
pub const INFINITE: u64 = u64::MAX;

/// One structured event in a convergence trace.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEvent {
    /// A synchronous stage began (deliveries from stage `stage - 1` are
    /// about to be processed).
    StageStart {
        /// 1-based stage number.
        stage: u64,
    },
    /// A node advertised a (new or changed) selected route.
    RouteSelected {
        /// The advertising AS.
        node: u32,
        /// The destination AS.
        dest: u32,
        /// Stage (or async sequence) of the advertisement.
        stage: u64,
        /// Number of ASes on the advertised path, endpoints included.
        hops: u32,
        /// Advertised transit cost of the path ([`INFINITE`] never occurs
        /// for a selected route).
        path_cost: u64,
    },
    /// A node's price entry for transit node `k` toward `dest` changed.
    PriceRelaxed {
        /// The AS holding the price entry.
        node: u32,
        /// The destination AS.
        dest: u32,
        /// The transit AS being priced.
        k: u32,
        /// Stage (or async sequence) of the change.
        stage: u64,
        /// Previous entry ([`INFINITE`] when not yet relaxed).
        old: u64,
        /// New entry.
        new: u64,
    },
    /// A node advertised that it lost its route to `dest`.
    Withdrawn {
        /// The advertising AS.
        node: u32,
        /// The destination AS.
        dest: u32,
        /// Stage (or async sequence) of the withdrawal.
        stage: u64,
    },
    /// The run reached quiescence: no queued messages anywhere.
    Quiescent {
        /// Last stage in which advertised state changed (the convergence
        /// stage the paper bounds).
        stage: u64,
        /// Total messages delivered over the run.
        messages: u64,
    },
    /// A seeded chaos fault perturbed the message fabric (see the
    /// `chaos` module of the BGP crate and `docs/ROBUSTNESS.md`).
    FaultInjected {
        /// Stage (or async sequence) of the injection.
        stage: u64,
        /// The AS whose traffic or state was hit (the sender, for
        /// channel faults).
        node: u32,
        /// The receiving AS for channel faults; `u32::MAX` for node-level
        /// faults (crash, restart).
        peer: u32,
        /// Fault code: 0 drop, 1 duplicate, 2 delay, 3 link flap,
        /// 4 crash.
        fault: u32,
    },
    /// A sender re-sent a sequenced frame that stayed unacknowledged past
    /// the retransmit timer.
    Retransmit {
        /// Stage of the re-send.
        stage: u64,
        /// The retransmitting AS.
        from: u32,
        /// The neighbor the frame is addressed to.
        to: u32,
        /// Sequence number of the re-sent frame.
        seq: u64,
    },
    /// A receiver reset its per-neighbor transport session (a new epoch
    /// was accepted, or the hold timer tore the session down).
    SessionReset {
        /// Stage of the reset.
        stage: u64,
        /// The AS resetting its session state.
        node: u32,
        /// The neighbor the session belongs to.
        peer: u32,
    },
    /// A crashed node rejoined the protocol with empty state.
    NodeRestart {
        /// Stage of the rejoin.
        stage: u64,
        /// The restarting AS.
        node: u32,
    },
}

impl TraceEvent {
    /// The event's type tag, as it appears in the JSONL `type` field and in
    /// the golden schema.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::StageStart { .. } => "StageStart",
            TraceEvent::RouteSelected { .. } => "RouteSelected",
            TraceEvent::PriceRelaxed { .. } => "PriceRelaxed",
            TraceEvent::Withdrawn { .. } => "Withdrawn",
            TraceEvent::Quiescent { .. } => "Quiescent",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::Retransmit { .. } => "Retransmit",
            TraceEvent::SessionReset { .. } => "SessionReset",
            TraceEvent::NodeRestart { .. } => "NodeRestart",
        }
    }

    /// The stage (or async sequence number) the event is keyed by.
    pub fn stage(&self) -> u64 {
        match *self {
            TraceEvent::StageStart { stage }
            | TraceEvent::RouteSelected { stage, .. }
            | TraceEvent::PriceRelaxed { stage, .. }
            | TraceEvent::Withdrawn { stage, .. }
            | TraceEvent::Quiescent { stage, .. }
            | TraceEvent::FaultInjected { stage, .. }
            | TraceEvent::Retransmit { stage, .. }
            | TraceEvent::SessionReset { stage, .. }
            | TraceEvent::NodeRestart { stage, .. } => stage,
        }
    }

    /// Encodes the event as one compact JSON object (no trailing newline).
    /// All values are numbers except the `type` tag; field order is fixed,
    /// so traces diff cleanly.
    pub fn to_json(&self) -> String {
        match *self {
            TraceEvent::StageStart { stage } => {
                format!("{{\"type\":\"StageStart\",\"stage\":{stage}}}")
            }
            TraceEvent::RouteSelected {
                node,
                dest,
                stage,
                hops,
                path_cost,
            } => format!(
                "{{\"type\":\"RouteSelected\",\"node\":{node},\"dest\":{dest},\
                 \"stage\":{stage},\"hops\":{hops},\"path_cost\":{path_cost}}}"
            ),
            TraceEvent::PriceRelaxed {
                node,
                dest,
                k,
                stage,
                old,
                new,
            } => format!(
                "{{\"type\":\"PriceRelaxed\",\"node\":{node},\"dest\":{dest},\
                 \"k\":{k},\"stage\":{stage},\"old\":{old},\"new\":{new}}}"
            ),
            TraceEvent::Withdrawn { node, dest, stage } => format!(
                "{{\"type\":\"Withdrawn\",\"node\":{node},\"dest\":{dest},\"stage\":{stage}}}"
            ),
            TraceEvent::Quiescent { stage, messages } => {
                format!("{{\"type\":\"Quiescent\",\"stage\":{stage},\"messages\":{messages}}}")
            }
            TraceEvent::FaultInjected {
                stage,
                node,
                peer,
                fault,
            } => format!(
                "{{\"type\":\"FaultInjected\",\"stage\":{stage},\"node\":{node},\
                 \"peer\":{peer},\"fault\":{fault}}}"
            ),
            TraceEvent::Retransmit {
                stage,
                from,
                to,
                seq,
            } => format!(
                "{{\"type\":\"Retransmit\",\"stage\":{stage},\"from\":{from},\
                 \"to\":{to},\"seq\":{seq}}}"
            ),
            TraceEvent::SessionReset { stage, node, peer } => format!(
                "{{\"type\":\"SessionReset\",\"stage\":{stage},\"node\":{node},\"peer\":{peer}}}"
            ),
            TraceEvent::NodeRestart { stage, node } => {
                format!("{{\"type\":\"NodeRestart\",\"stage\":{stage},\"node\":{node}}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let events = [
            TraceEvent::StageStart { stage: 1 },
            TraceEvent::RouteSelected {
                node: 0,
                dest: 1,
                stage: 1,
                hops: 2,
                path_cost: 0,
            },
            TraceEvent::PriceRelaxed {
                node: 0,
                dest: 1,
                k: 2,
                stage: 1,
                old: INFINITE,
                new: 3,
            },
            TraceEvent::Withdrawn {
                node: 0,
                dest: 1,
                stage: 2,
            },
            TraceEvent::Quiescent {
                stage: 3,
                messages: 42,
            },
            TraceEvent::FaultInjected {
                stage: 4,
                node: 0,
                peer: 1,
                fault: 0,
            },
            TraceEvent::Retransmit {
                stage: 5,
                from: 0,
                to: 1,
                seq: 7,
            },
            TraceEvent::SessionReset {
                stage: 6,
                node: 1,
                peer: 0,
            },
            TraceEvent::NodeRestart { stage: 7, node: 2 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(TraceEvent::kind).collect();
        assert_eq!(
            kinds,
            vec![
                "StageStart",
                "RouteSelected",
                "PriceRelaxed",
                "Withdrawn",
                "Quiescent",
                "FaultInjected",
                "Retransmit",
                "SessionReset",
                "NodeRestart",
            ]
        );
        kinds.dedup();
        assert_eq!(kinds.len(), 9);
    }

    #[test]
    fn json_encoding_is_exact() {
        let event = TraceEvent::PriceRelaxed {
            node: 3,
            dest: 5,
            k: 4,
            stage: 2,
            old: INFINITE,
            new: 7,
        };
        assert_eq!(
            event.to_json(),
            format!(
                "{{\"type\":\"PriceRelaxed\",\"node\":3,\"dest\":5,\"k\":4,\
                 \"stage\":2,\"old\":{INFINITE},\"new\":7}}"
            )
        );
    }

    #[test]
    fn stage_accessor_covers_all_variants() {
        assert_eq!(TraceEvent::StageStart { stage: 9 }.stage(), 9);
        assert_eq!(
            TraceEvent::Quiescent {
                stage: 4,
                messages: 0
            }
            .stage(),
            4
        );
    }
}
