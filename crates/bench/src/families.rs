//! The graph families experiments sweep over.

use bgpvcg_netgraph::generators::structured;
use bgpvcg_netgraph::generators::{
    barabasi_albert, erdos_renyi, hierarchy, random_costs, waxman, HierarchyConfig, WaxmanConfig,
};
use bgpvcg_netgraph::AsGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named topology family, buildable at any size from a seed.
///
/// Random costs are drawn uniformly from `[1, 10]` (strictly positive so
/// overcharge ratios are defined); structured families use uniform costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Cycle graph — linear diameter, the stress case for convergence.
    Ring,
    /// Erdős–Rényi with expected degree ≈ 5.
    ErdosRenyi,
    /// Barabási–Albert preferential attachment, `m = 2` — the stand-in for
    /// the power-law AS graph.
    BarabasiAlbert,
    /// Waxman geographic random graph (classic Internet-topology model).
    Waxman,
    /// Two-tier ISP hierarchy: full-mesh core + dual-homed stubs.
    Hierarchy,
}

impl Family {
    /// All families, in display order.
    pub const ALL: [Family; 5] = [
        Family::Ring,
        Family::ErdosRenyi,
        Family::BarabasiAlbert,
        Family::Waxman,
        Family::Hierarchy,
    ];

    /// The family's display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Ring => "ring",
            Family::ErdosRenyi => "erdos-renyi",
            Family::BarabasiAlbert => "barabasi-albert",
            Family::Waxman => "waxman",
            Family::Hierarchy => "hierarchy",
        }
    }

    /// Builds an `n`-node instance (biconnected by construction).
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` (the hierarchy family needs room for its core).
    pub fn build(self, n: usize, seed: u64) -> AsGraph {
        assert!(n >= 8, "families are calibrated for n >= 8");
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Family::Ring => structured::ring(n, bgpvcg_netgraph::Cost::new(2)),
            Family::ErdosRenyi => {
                let costs = random_costs(n, 1, 10, &mut rng);
                let p = (5.0 / n as f64).min(1.0);
                erdos_renyi(costs, p, &mut rng)
            }
            Family::BarabasiAlbert => {
                let costs = random_costs(n, 1, 10, &mut rng);
                barabasi_albert(costs, 2, &mut rng)
            }
            Family::Waxman => {
                let costs = random_costs(n, 1, 10, &mut rng);
                waxman(costs, WaxmanConfig::default(), &mut rng)
            }
            Family::Hierarchy => {
                let core = (n / 8).clamp(3, 12);
                hierarchy(
                    HierarchyConfig {
                        core_size: core,
                        stub_count: n - core,
                        core_cost: (1, 3),
                        stub_cost: (4, 10),
                    },
                    &mut rng,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_build_biconnected_graphs() {
        for family in Family::ALL {
            for &n in &[8usize, 24, 48] {
                let g = family.build(n, 1);
                assert_eq!(g.node_count(), n, "{}", family.name());
                assert!(g.is_biconnected(), "{} n={n}", family.name());
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for family in Family::ALL {
            assert_eq!(family.build(16, 9), family.build(16, 9));
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }
}
