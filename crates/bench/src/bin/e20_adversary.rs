//! E20 (extension) — Byzantine adversaries, online incremental auditing,
//! and quarantine-and-reconverge recovery (Sect. 7's open problem, made
//! operational).
//!
//! The paper closes asking what stops the very ASes that run the
//! distributed algorithm from running a *different* one. E13 answered with
//! an offline replay-and-diff audit of converged tables; this experiment
//! closes the loop online: every node is shadowed by an honest replica fed
//! the actual wire deliveries (`bgpvcg-core::audit::OnlineAuditor`), so a
//! node whose advertisements diverge from what the honest protocol — same
//! inbox, same code path — would have sent is accused *while the protocol
//! runs*, quarantined through the engine's `NodeDown` machinery, and the
//! surviving network reconverges within the same run.
//!
//! Three claims are asserted, not just reported:
//!
//! 1. **Detection coverage** — each of the five seeded Byzantine
//!    strategies ([`Strategy::ALL`]) is caught on every topology family
//!    it fires on, including equivocation, which E13 proves is invisible
//!    to any offline (single-table) auditor.
//! 2. **Quarantine-and-reconverge parity** — when the residual graph
//!    stays biconnected, the post-quarantine fixpoint is *bit-identical*
//!    to a run the adversary never joined. When it would not stay
//!    biconnected (the ring), the accusation is recorded but quarantine
//!    is refused: the mechanism's preconditions outrank recovery.
//! 3. **Zero false positives** — honest runs across every family, seed,
//!    and worker count draw no accusations.
//!
//! Flags:
//!
//! * `--smoke` — reduced matrix for CI (`cargo xtask ci` runs this).
//! * `--flight-out PATH` — where the audit-violation flight post-mortem
//!   (PR 7's divergence recorder, armed by the auditor) is dumped;
//!   defaults to `target/e20_adversary_flight.json`. The artifact is
//!   validated against the flight dump schema either way.
//! * `--health-out PATH` / `--profile-out PATH` — the shared observability
//!   surface (`bgpvcg_bench::obs`): the honest sweep's health report
//!   (asserted finding-free even under parallel workers) and the span
//!   profile of the adversarial post-mortem run, which covers the
//!   audit-shadow and adversary-tap phases.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e20_adversary`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::obs::ObsConfig;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::{Adversary, Strategy, TopologyEvent};
use bgpvcg_core::{protocol, RoutingOutcome};
use bgpvcg_netgraph::{AsGraph, AsId};
use bgpvcg_telemetry::{flight, HealthConfig};
use std::path::PathBuf;

/// Finds a node whose removal keeps the mechanism preconditions (the
/// residual graph biconnected), together with the reference outcome of
/// "honest convergence, then that node leaves" — the fixpoint an
/// adversary-never-joined network reaches after the same quarantine.
/// `None` when no node is removable (e.g. a ring).
fn quarantine_reference(g: &AsGraph) -> Option<(AsId, RoutingOutcome)> {
    for idx in 0..g.node_count() as u32 {
        let culprit = AsId::new(idx);
        let mut engine = protocol::build_sync_engine(g).unwrap();
        assert!(engine.run_to_convergence().converged);
        if engine
            .try_apply_event(TopologyEvent::NodeDown(culprit))
            .is_ok()
        {
            let outcome = protocol::outcome_from_nodes(&engine.into_nodes()).unwrap();
            return Some((culprit, outcome));
        }
    }
    None
}

struct MatrixRow {
    family: &'static str,
    strategy: Strategy,
    /// The wrapped node never actually perturbed a delivery (e.g. replay
    /// on a run with no route revisions) — behaviorally honest, so there
    /// is nothing to detect.
    idle: bool,
    detected_stage: Option<u64>,
    findings: usize,
    equivocation_flagged: bool,
    quarantined: bool,
    parity: Option<bool>,
}

/// Runs one (family, strategy) adversarial cell and checks it end to end.
fn run_cell(
    g: &AsGraph,
    family: &'static str,
    strategy: Strategy,
    culprit: AsId,
    reference: Option<&RoutingOutcome>,
    seed: u64,
) -> MatrixRow {
    let mut engine = protocol::build_audited_sync_engine(g).unwrap();
    engine.set_adversary(culprit, Adversary::new(strategy, seed));
    let report = engine.run_to_convergence();
    assert!(report.converged, "{family}/{}", strategy.name());
    assert!(
        engine.accusations().iter().all(|acc| acc.node == culprit),
        "{family}/{}: only the liar may be accused: {:?}",
        strategy.name(),
        engine.accusations()
    );
    // A surviving tap (no quarantine) reports its injection count; a
    // cleared tap means quarantine fired, which implies injection.
    let idle = engine
        .adversary(culprit)
        .is_some_and(|adv| adv.injected() == 0);
    let detected_stage = engine.accusations().first().map(|acc| acc.stage);
    let findings = engine
        .accusations()
        .iter()
        .map(|acc| acc.findings.len())
        .sum();
    let equivocation_flagged = engine
        .accusations()
        .iter()
        .flat_map(|acc| &acc.findings)
        .any(|f| f.equivocation);
    let quarantined = engine.quarantined() == [culprit];
    // Outcome extraction only makes sense post-quarantine: with the
    // adversary still wired in (quarantine refused), the converged state
    // is deliberately poisoned and has no honest reference.
    let parity = match (quarantined, reference) {
        (true, Some(reference)) => {
            let outcome = protocol::outcome_from_nodes(&engine.into_nodes()).unwrap();
            Some(outcome == *reference)
        }
        _ => None,
    };
    MatrixRow {
        family,
        strategy,
        idle,
        detected_stage,
        findings,
        equivocation_flagged,
        quarantined,
        parity,
    }
}

fn main() {
    let mut smoke = false;
    let (obs, rest) = ObsConfig::extract(std::env::args().skip(1));
    for arg in rest {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: e20_adversary [--smoke] [--flight-out PATH] \
                     [--health-out PATH] [--profile-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let flight_out = obs
        .flight_out()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/e20_adversary_flight.json"));

    println!("E20 — Byzantine adversaries, online auditing, quarantine-and-reconverge (Sect. 7)\n");
    let n = if smoke { 12 } else { 20 };
    let graph_seed = 51;
    let families: &[Family] = if smoke {
        &[Family::ErdosRenyi, Family::Ring]
    } else {
        &Family::ALL
    };

    // ── 1. Detection-coverage matrix ────────────────────────────────────
    let mut table = Table::new([
        "family",
        "strategy",
        "detected @stage",
        "findings",
        "equivocation flag",
        "quarantined",
        "parity vs never-joined",
    ]);
    let mut rows: Vec<MatrixRow> = Vec::new();
    for &family in families {
        let g = family.build(n, graph_seed);
        // On quarantine-capable families the culprit is a node whose
        // removal keeps the graph biconnected; on the ring no node
        // qualifies, so quarantine must be refused — pick node 0 and
        // expect detection without recovery.
        let (culprit, reference) = match quarantine_reference(&g) {
            Some((culprit, outcome)) => (culprit, Some(outcome)),
            None => (AsId::new(0), None),
        };
        for strategy in Strategy::ALL {
            let row = run_cell(&g, family.name(), strategy, culprit, reference.as_ref(), 11);
            table.row([
                row.family.to_string(),
                row.strategy.name().to_string(),
                row.detected_stage
                    .map_or(if row.idle { "never lied" } else { "-" }.to_string(), |s| {
                        s.to_string()
                    }),
                row.findings.to_string(),
                if row.equivocation_flagged {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
                match (row.quarantined, row.idle) {
                    (true, _) => "yes",
                    (false, true) => "n/a",
                    (false, false) => "refused",
                }
                .to_string(),
                match (row.parity, row.idle) {
                    (Some(true), _) => "bit-identical".to_string(),
                    (Some(false), _) => "DIVERGED".to_string(),
                    (None, true) => "n/a (honest run)".to_string(),
                    (None, false) => "n/a (not biconnected)".to_string(),
                },
            ]);
            rows.push(row);
        }
    }
    println!("{table}");

    // Assert the coverage the matrix displays: every perturbation that
    // actually hit the wire must have been detected, and an idle tap must
    // have drawn no accusation at all (a wrapped-but-honest node is
    // indistinguishable from honest — that is the zero-false-positive
    // property, not a miss).
    for row in &rows {
        if row.idle {
            assert!(
                row.detected_stage.is_none() && row.findings == 0 && !row.quarantined,
                "{}/{}: a behaviorally honest tap must not be accused",
                row.family,
                row.strategy.name()
            );
            continue;
        }
        assert!(
            row.detected_stage.is_some(),
            "{}/{}: every strategy that fires must be detected online",
            row.family,
            row.strategy.name()
        );
        assert!(row.findings > 0, "{}/{}", row.family, row.strategy.name());
        if row.strategy == Strategy::Equivocate {
            assert!(
                row.equivocation_flagged,
                "{}: equivocation must be flagged as such (the offline blind spot)",
                row.family
            );
        }
        match row.parity {
            Some(parity) => assert!(
                parity,
                "{}/{}: post-quarantine fixpoint must be bit-identical to the \
                 adversary-never-joined run",
                row.family,
                row.strategy.name()
            ),
            None => assert!(
                !row.quarantined,
                "{}/{}: no reference implies quarantine was refused",
                row.family,
                row.strategy.name()
            ),
        }
    }
    // Full coverage: every strategy fires — and is caught — somewhere.
    for strategy in Strategy::ALL {
        assert!(
            rows.iter()
                .any(|r| r.strategy == strategy && r.detected_stage.is_some()),
            "{}: must be detected on at least one family",
            strategy.name()
        );
    }
    let fired_rows = rows.iter().filter(|r| !r.idle).count();
    let idle_rows = rows.len() - fired_rows;
    let quarantined_rows = rows.iter().filter(|r| r.quarantined).count();
    let refused_rows = fired_rows - quarantined_rows;

    // ── 2. Honest runs: zero false positives ────────────────────────────
    let seeds: &[u64] = if smoke { &[7, 51] } else { &[7, 23, 51, 97] };
    let workers: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut honest_runs = 0usize;
    let mut last_health = None;
    for &family in Family::ALL.iter() {
        for &seed in seeds {
            let g = family.build(n, seed);
            let reference = protocol::run_sync(&g).unwrap();
            for &w in workers {
                let mut engine = protocol::build_audited_sync_engine_parallel(&g, w).unwrap();
                engine.attach_telemetry(obs.telemetry());
                engine.attach_health(HealthConfig::default());
                assert!(engine.run_to_convergence().converged);
                assert!(
                    engine.accusations().is_empty(),
                    "{}/seed {seed}/workers {w}: honest run accused: {:?}",
                    family.name(),
                    engine.accusations()
                );
                assert!(engine.quarantined().is_empty());
                // The SLO story mirrors the audit story: honest runs draw
                // zero health findings at every worker count, not just
                // zero accusations.
                let health = engine.health_sink().expect("health attached").snapshot();
                assert!(
                    health.findings().is_empty(),
                    "{}/seed {seed}/workers {w}: honest run raised health findings: {:?}",
                    family.name(),
                    health.findings()
                );
                last_health = Some(health);
                let outcome = protocol::outcome_from_nodes(&engine.into_nodes()).unwrap();
                assert_eq!(
                    outcome,
                    reference.outcome,
                    "{}/seed {seed}/workers {w}",
                    family.name()
                );
                honest_runs += 1;
            }
        }
    }
    println!(
        "Honest sweep: {honest_runs} audited runs ({} families x {} seeds x {} worker counts) — \
         0 accusations, 0 health findings, outcomes bit-identical to unaudited runs",
        Family::ALL.len(),
        seeds.len(),
        workers.len()
    );

    // ── 3. Flight post-mortem on an audit violation ─────────────────────
    if let Some(dir) = flight_out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let g = Family::ErdosRenyi.build(n, graph_seed);
    let (culprit, _) = quarantine_reference(&g).expect("erdos-renyi keeps a removable node");
    let mut engine = protocol::build_audited_sync_engine(&g).unwrap();
    engine.attach_flight_recorder(&flight_out, 256);
    engine.attach_profiler();
    engine.set_adversary(culprit, Adversary::new(Strategy::Equivocate, 11));
    assert!(engine.run_to_convergence().converged);
    assert!(!engine.accusations().is_empty());
    let profile = engine.take_profiler().expect("profiler attached");
    let dump = std::fs::read_to_string(&flight_out).expect("accusation must dump a post-mortem");
    flight::validate_dump(&dump).expect("post-mortem must be schema-valid");
    assert!(
        dump.contains(flight::REASON_AUDIT_VIOLATION),
        "post-mortem carries the audit-violation reason"
    );
    println!(
        "Flight post-mortem: {} (schema-valid, reason `{}`)",
        flight_out.display(),
        flight::REASON_AUDIT_VIOLATION
    );
    if let Some(health) = &last_health {
        obs.write_health(health);
    }
    obs.write_profile(&profile);
    obs.finish();

    println!(
        "\nVERDICT: {fired_rows}/{fired_rows} firing adversarial cells detected online \
         ({idle_rows} idle); {quarantined_rows} quarantined with bit-identical reconvergence, \
         {refused_rows} recorded-only (residual graph not biconnected); {honest_runs} honest \
         runs with zero accusations",
    );
}
