//! E8 — Sect. 7: overcharging — total payments exceed true path costs.
//!
//! Reproduces the paper's overcharging discussion quantitatively: the
//! `Y→Z` example (payment 9 for a cost-1 path), plus the distribution of
//! the payment/cost ratio across families, and the wheel topology as a
//! constructed extreme case (a free hub whose every price carries the full
//! rim detour).
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e8_overcharging`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::stats;
use bgpvcg_bench::table::Table;
use bgpvcg_core::{overcharge::OverchargeReport, vcg};
use bgpvcg_netgraph::generators::structured::{fig1, wheel, Fig1};
use bgpvcg_netgraph::Cost;

fn main() {
    println!("E8 — Sect. 7 overcharging: Σ payments vs true path cost\n");

    // The paper's own example first.
    let outcome = vcg::compute(&fig1()).unwrap();
    let report = OverchargeReport::analyze(&outcome);
    let yz = report
        .pairs
        .iter()
        .find(|p| p.source == Fig1::Y && p.destination == Fig1::Z)
        .unwrap();
    println!(
        "Fig. 1, Y→Z: payment {} vs cost {} (paper: 9 vs 1, ratio 9).",
        yz.total_payment, yz.route_cost
    );
    assert_eq!((yz.total_payment, yz.route_cost), (9, 1));

    let sizes = [16usize, 32, 64];
    let seeds = [1u64, 2, 3];
    let mut table = Table::new([
        "family",
        "n",
        "mean ratio",
        "max ratio",
        "total pay / total cost",
    ]);
    for family in Family::ALL {
        for &n in &sizes {
            let mut means = Vec::new();
            let mut maxes = Vec::new();
            let mut aggregate = Vec::new();
            for &seed in &seeds {
                let g = family.build(n, seed);
                let outcome = vcg::compute(&g).unwrap();
                let report = OverchargeReport::analyze(&outcome);
                assert!(report.payments_dominate_costs(), "{} n={n}", family.name());
                means.push(report.mean_ratio().unwrap_or(1.0));
                maxes.push(report.max_ratio().unwrap_or(1.0));
                let (pay, cost) = report.totals();
                aggregate.push(pay as f64 / cost.max(1) as f64);
            }
            table.row([
                family.name().to_string(),
                n.to_string(),
                format!("{:.2}", stats::mean(&means)),
                format!("{:.2}", stats::max(&maxes).unwrap()),
                format!("{:.2}", stats::mean(&aggregate)),
            ]);
        }
    }
    println!("{table}");

    // A constructed extreme: free hub, expensive rim.
    let g = wheel(10, Cost::ZERO, Cost::new(10));
    let outcome = vcg::compute(&g).unwrap();
    let report = OverchargeReport::analyze(&outcome);
    let worst = report.worst_pair().unwrap();
    println!(
        "Constructed extreme (10-node wheel, free hub, rim cost 10): worst pair pays {} \
         over a cost-{} route (surplus {}).",
        worst.total_payment,
        worst.route_cost,
        worst.surplus()
    );
    println!(
        "\nVERDICT: payments always dominate costs; premiums range from ~1x (dense graphs) \
         to unbounded in constructed monopolistic-looking topologies — matching Sect. 7's concern"
    );
}
