//! E1 — The paper's worked example (Fig. 1, Fig. 2, Sect. 4).
//!
//! Reproduces every number the paper derives on its six-AS example: the
//! selected LCPs, the tree `T(Z)` of Fig. 2, the payments `D = 3`, `B = 4`
//! for `X→Z`, and the overcharged payment `D = 9` for `Y→Z` — computed both
//! centrally (Theorem 1) and by the distributed BGP extension (Theorem 2).
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e1_worked_example`

use bgpvcg_bench::table::Table;
use bgpvcg_core::{protocol, vcg};
use bgpvcg_lcp::shortest_tree;
use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
use bgpvcg_netgraph::{AsId, Cost};

const NAMES: [&str; 6] = ["X", "A", "Z", "D", "B", "Y"];

fn name(k: AsId) -> &'static str {
    NAMES[k.index()]
}

fn main() {
    println!("E1 — worked example of Sect. 4 (Fig. 1 graph, Fig. 2 tree)\n");
    let g = fig1();

    let reference = vcg::compute(&g).expect("Fig. 1 is biconnected");
    let run = protocol::run_sync(&g).expect("Fig. 1 is biconnected");
    assert_eq!(
        run.outcome, reference,
        "Theorem 2: protocol computes VCG prices"
    );

    println!("Fig. 2 — the tree T(Z) selected by lowest-cost routing:");
    let t = shortest_tree(&g, Fig1::Z);
    let mut tree_table = Table::new(["node", "parent in T(Z)", "LCP to Z", "cost"]);
    for k in g.nodes() {
        if k == Fig1::Z {
            continue;
        }
        let parent = t.parent(k).map_or("-".to_string(), |p| name(p).to_string());
        let path: Vec<&str> = t
            .route(k)
            .unwrap()
            .nodes()
            .iter()
            .map(|x| name(*x))
            .collect();
        tree_table.row([
            name(k).to_string(),
            parent,
            path.join(" "),
            t.cost(k).to_string(),
        ]);
    }
    println!("{tree_table}");

    println!("Sect. 4 payments (paper value vs centralized vs distributed):");
    let mut pay = Table::new([
        "packet",
        "transit node",
        "paper",
        "centralized",
        "distributed",
    ]);
    let cases = [
        (Fig1::X, Fig1::Z, Fig1::D, 3u64),
        (Fig1::X, Fig1::Z, Fig1::B, 4),
        (Fig1::Y, Fig1::Z, Fig1::D, 9),
    ];
    let mut all_match = true;
    for (i, j, k, paper) in cases {
        let central = reference.price(i, j, k).unwrap();
        let distributed = run.outcome.price(i, j, k).unwrap();
        all_match &= central == Cost::new(paper) && distributed == Cost::new(paper);
        pay.row([
            format!("{}→{}", name(i), name(j)),
            name(k).to_string(),
            paper.to_string(),
            central.to_string(),
            distributed.to_string(),
        ]);
    }
    println!("{pay}");

    println!(
        "Protocol converged in {} stages ({} messages, {} bytes).",
        run.report.stages, run.report.messages, run.report.bytes
    );
    println!(
        "\nVERDICT: {}",
        if all_match {
            "all worked-example payments reproduced exactly"
        } else {
            "MISMATCH against the paper"
        }
    );
    assert!(all_match);
}
