//! E19 (chaos) — seeded fault injection over the full pricing protocol,
//! with a machine-readable recovery trajectory.
//!
//! Every benchmark topology family runs under two fault scenarios:
//!
//! * **lossy** — stochastic drop/duplicate/delay on every inter-node
//!   channel until the fault horizon;
//! * **crash** — the same lossy channels plus one node crash (total state
//!   loss) and later restart (rejoin from scratch);
//! * **flap** — the same lossy channels plus one link that silently eats
//!   every frame for longer than the hold timer, so both endpoints declare
//!   the neighbor dead (implicit withdrawal) and must re-establish when
//!   the window closes.
//!
//! Each run is driven by the chaos harness's sequenced session layer
//! (ack/retransmit, hold timers, epoch resets — see `docs/ROBUSTNESS.md`)
//! and is compared bit-for-bit against the fault-free synchronous fixpoint:
//! the `exact` column is the self-stabilization claim, asserted before the
//! row is even reported. Every fault schedule derives from a single `u64`
//! seed, so any row reproduces exactly with `--seed S`.
//!
//! Besides the human table, the run writes the machine-readable
//! `BENCH_chaos.json` at the repository root, validated in CI by
//! `cargo xtask chaos --smoke` against `crates/bench/bench-chaos-schema.json`.
//!
//! Every run also carries the streaming health monitor and the span
//! profiler: the table reports how many SLO findings the fault schedule
//! provoked, each JSON row gains an optional `span_nanos` block (the
//! per-phase harness breakdown, timing-exempt in `--compare`), and the
//! sweep-merged profile/health artifacts land at the shared
//! `--profile-out` / `--health-out` paths.
//!
//! Flags:
//!
//! * `--smoke` — small sizes and fewer seeds for CI; same schema.
//! * `--seed S` — replay mode: run only fault seed `S` (all families and
//!   scenarios), printing each full `ChaosReport`.
//! * `--out PATH` — where to write the JSON (default: repo-root
//!   `BENCH_chaos.json`).
//! * `--flight-out PATH` — attach a divergence flight recorder to every
//!   run: if a run ever exhausts the stage budget instead of stabilizing,
//!   the last trace events and per-node session state are dumped to
//!   `PATH` as a schema-valid post-mortem (see `docs/OBSERVABILITY.md`).
//!   Converged runs leave no dump. Part of the shared observability
//!   surface (`bgpvcg_bench::obs`), alongside `--trace-out`,
//!   `--metrics-out`, `--health-out`, and `--profile-out`.
//!
//! Regenerate with: `cargo run --release -p bgpvcg-bench --bin e19_chaos`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::obs::ObsConfig;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::chaos::FaultPlan;
use bgpvcg_bgp::{wire, ProtocolNode};
use bgpvcg_core::protocol;
use bgpvcg_netgraph::AsId;
use bgpvcg_telemetry::profile::span;
use bgpvcg_telemetry::{HealthConfig, SpanProfiler};
use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

/// Stage budget per run; self-stabilization lands far below this.
const MAX_STAGES: u64 = 5_000;

/// Stochastic faults cease after this stage (crash/restart are scheduled
/// inside the window).
const HORIZON: u64 = 16;

/// One family × size × seed × scenario measurement.
struct Row {
    family: &'static str,
    n: usize,
    seed: u64,
    scenario: &'static str,
    stages: u64,
    recovery_stages: u64,
    messages: u64,
    bytes_v2: u64,
    encode_nanos: u128,
    frames_dropped: u64,
    frames_duplicated: u64,
    frames_delayed: u64,
    retransmits: u64,
    session_resets: u64,
    holds_fired: u64,
    crashes: u64,
    restarts: u64,
    /// Per-span `(name, total_nanos)` harness breakdown for spans that
    /// fired (emitted as the optional `span_nanos` JSON block).
    span_nanos: Vec<(&'static str, u64)>,
    exact: bool,
}

struct Config {
    smoke: bool,
    seed: Option<u64>,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: e19_chaos [--smoke] [--seed S] [--out PATH] [--flight-out PATH] \
         [--health-out PATH] [--profile-out PATH]"
    );
    exit(2);
}

fn parse_args() -> (Config, ObsConfig) {
    let mut config = Config {
        smoke: false,
        seed: None,
        out: PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_chaos.json"
        )),
    };
    let (obs, rest) = ObsConfig::extract(std::env::args().skip(1));
    let mut args = rest.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => config.smoke = true,
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(seed) => config.seed = Some(seed),
                None => {
                    eprintln!("`--seed` requires a u64 argument");
                    usage();
                }
            },
            "--out" => match args.next() {
                Some(path) => config.out = PathBuf::from(path),
                None => {
                    eprintln!("`--out` requires a PATH argument");
                    usage();
                }
            },
            _ => {
                eprintln!("unknown argument `{arg}`");
                usage();
            }
        }
    }
    (config, obs)
}

/// Builds the fault plan for one (seed, scenario) cell. The crash victim
/// and flapped link are seed-derived so replaying a seed replays the whole
/// schedule.
fn plan_for(scenario: &str, seed: u64, n: usize, link: (AsId, AsId)) -> FaultPlan {
    let lossy = FaultPlan::lossy(seed, HORIZON);
    match scenario {
        "lossy" => lossy,
        "crash" => lossy.with_crash(4, AsId::new((seed % n as u64) as u32), 11),
        // The window exceeds the hold timer, so both endpoints time the
        // link out before it heals.
        "flap" => lossy.with_flap(2, HORIZON + 10, link.0, link.1),
        other => unreachable!("unknown scenario {other}"),
    }
}

/// Hand-written JSON emission (the workspace has no serde implementation);
/// the shape is pinned by `crates/bench/bench-chaos-schema.json` and
/// validated by `cargo xtask chaos`.
fn render_json(config: &Config, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if config.smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"horizon\": {HORIZON},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"seed\": {}, \"scenario\": \"{}\", \
             \"stages\": {}, \"recovery_stages\": {}, \"messages\": {}, \
             \"bytes_v2\": {}, \"encode_nanos\": {}, \
             \"frames_dropped\": {}, \"frames_duplicated\": {}, \"frames_delayed\": {}, \
             \"retransmits\": {}, \"session_resets\": {}, \"holds_fired\": {}, \
             \"crashes\": {}, \"restarts\": {}, \"span_nanos\": {{{}}}, \"exact\": {}}}{}\n",
            row.family,
            row.n,
            row.seed,
            row.scenario,
            row.stages,
            row.recovery_stages,
            row.messages,
            row.bytes_v2,
            row.encode_nanos,
            row.frames_dropped,
            row.frames_duplicated,
            row.frames_delayed,
            row.retransmits,
            row.session_resets,
            row.holds_fired,
            row.crashes,
            row.restarts,
            row.span_nanos
                .iter()
                .enumerate()
                .map(|(j, (name, nanos))| format!(
                    "{}\"{name}\": {nanos}",
                    if j == 0 { "" } else { ", " }
                ))
                .collect::<String>(),
            row.exact,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn main() {
    let (config, obs) = parse_args();
    println!("E19 — seeded chaos: self-stabilization of the pricing protocol\n");
    let mut sweep_profile = SpanProfiler::engine();
    let mut last_health = None;
    let mut total_findings = 0usize;
    let sizes: &[usize] = if config.smoke { &[8] } else { &[16, 32] };
    let seeds: Vec<u64> = match config.seed {
        Some(seed) => vec![seed],
        None if config.smoke => vec![1, 2],
        None => vec![1, 2, 3, 4],
    };
    let mut rows = Vec::new();
    let mut table = Table::new([
        "family",
        "n",
        "seed",
        "scenario",
        "stages",
        "recovery",
        "dropped",
        "retransmits",
        "resets",
        "holds",
        "health findings",
        "exact",
    ]);
    for family in Family::ALL {
        for &n in sizes {
            let g = family.build(n, 0xE19 ^ n as u64);
            let reference = protocol::run_sync(&g).expect("valid graph").outcome;
            for &seed in &seeds {
                for scenario in ["lossy", "crash", "flap"] {
                    let link = g.links()[seed as usize % g.link_count()];
                    let plan = plan_for(scenario, seed, n, (link.a(), link.b()));
                    let mut engine = protocol::build_chaos_engine(&g, plan).expect("valid graph");
                    engine.attach_telemetry(obs.telemetry());
                    if let Some(path) = obs.flight_out() {
                        // With a flight recorder attached, a stage-budget
                        // overrun leaves a post-mortem dump before the
                        // assert below aborts the sweep.
                        engine.attach_flight_recorder(path, 256);
                    }
                    engine.attach_health(HealthConfig::default());
                    engine.attach_profiler();
                    let report = engine.run_to_stable(MAX_STAGES);
                    assert!(
                        report.converged,
                        "{} n={n} seed={seed} {scenario}: did not quiesce{}: {report}",
                        family.name(),
                        obs.flight_out()
                            .map(|p| format!(" (flight dump at {})", p.display()))
                            .unwrap_or_default()
                    );
                    // Fault schedules may legitimately provoke SLO findings
                    // (that is the monitor doing its job); report, don't
                    // assert — but a *stall* verdict on a run that
                    // stabilized would be a detector bug.
                    let health = engine.health_sink().expect("health attached").snapshot();
                    assert!(
                        !health.stalled(),
                        "{} n={n} seed={seed} {scenario}: stabilized run flagged as stalled",
                        family.name()
                    );
                    let findings = health.findings().len();
                    total_findings += findings;
                    last_health = Some(health);
                    let profile = engine.take_profiler().expect("profiler attached");
                    let span_nanos: Vec<(&'static str, u64)> = (0..span::NAMES.len())
                        .filter_map(|id| {
                            let (count, total, _) = profile.stat(id);
                            (count > 0).then(|| (span::NAMES[id], total))
                        })
                        .collect();
                    sweep_profile.merge(&profile);
                    let nodes = engine.into_nodes();

                    // Encode-cost microfigure: v2-encode every node's full
                    // stabilized table through one reused scratch buffer.
                    let mut scratch = Vec::new();
                    let mut encoded = 0usize;
                    // lint:allow(bench wall-clock timing is the measurement itself, not protocol state)
                    let t0 = Instant::now();
                    for node in &nodes {
                        if let Some(tbl) = node.full_table() {
                            encoded += wire::update_size_v2_with(&mut scratch, &tbl);
                        }
                    }
                    let encode_nanos = t0.elapsed().as_nanos();
                    assert!(encoded > 0);

                    let outcome = protocol::outcome_from_nodes(&nodes)
                        .expect("converged nodes have priced routes");
                    let exact = outcome == reference;
                    assert!(
                        exact,
                        "{} n={n} seed={seed} {scenario}: fixpoint differs from fault-free run",
                        family.name()
                    );
                    if config.seed.is_some() {
                        println!("{} n={n} {scenario}: {report}", family.name());
                    }
                    table.row([
                        family.name().to_string(),
                        n.to_string(),
                        seed.to_string(),
                        scenario.to_string(),
                        report.stages.to_string(),
                        report.recovery_stages.to_string(),
                        report.frames_dropped.to_string(),
                        report.retransmits.to_string(),
                        report.session_resets.to_string(),
                        report.holds_fired.to_string(),
                        findings.to_string(),
                        exact.to_string(),
                    ]);
                    rows.push(Row {
                        family: family.name(),
                        n,
                        seed,
                        scenario,
                        stages: report.stages,
                        recovery_stages: report.recovery_stages,
                        messages: report.messages,
                        bytes_v2: report.bytes_v2,
                        encode_nanos,
                        frames_dropped: report.frames_dropped,
                        frames_duplicated: report.frames_duplicated,
                        frames_delayed: report.frames_delayed,
                        retransmits: report.retransmits,
                        session_resets: report.session_resets,
                        holds_fired: report.holds_fired,
                        crashes: report.crashes,
                        restarts: report.restarts,
                        span_nanos,
                        exact,
                    });
                }
            }
        }
    }
    println!("{table}");
    let json = render_json(&config, &rows);
    std::fs::write(&config.out, json)
        .unwrap_or_else(|err| panic!("cannot write {}: {err}", config.out.display()));
    println!("\nwrote {}", config.out.display());
    if let Some(health) = &last_health {
        obs.write_health(health);
    }
    obs.write_profile(&sweep_profile);
    obs.finish();
    println!("health: {total_findings} SLO finding(s) across the fault sweep, 0 stall verdicts");
    println!(
        "\nVERDICT: under every seeded fault schedule (loss, duplication, reordering \
         delays, node crash/restart) the protocol self-stabilizes to the bit-identical \
         fault-free (routes, prices) fixpoint; recovery costs a bounded number of \
         retransmit/hold rounds past the fault horizon (see docs/ROBUSTNESS.md)"
    );
}
