//! E7 — Sect. 6.2: is `d′` much larger than `d` on Internet-like graphs?
//!
//! The paper notes that in general `d′` (the k-avoiding hop diameter, which
//! governs price convergence) "can be much higher than" `d`, "however, we
//! don't find that to be the case for the current AS graph". The real AS
//! topology is proprietary, so this experiment measures `d′/d` on the
//! synthetic Internet-like families (Barabási–Albert power-law, two-tier
//! hierarchy, Waxman) — and contrasts them with the ring, where the ratio
//! provably degenerates (`d′ = n − 2` vs `d = n/2`).
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e7_dprime_vs_d`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::stats;
use bgpvcg_bench::table::Table;
use bgpvcg_lcp::avoiding::AvoidanceTable;
use bgpvcg_lcp::{diameter, AllPairsLcp};

fn main() {
    println!("E7 — d'/d across topology families (5 seeds each)\n");
    let sizes = [16usize, 32, 64, 128];
    let seeds = [1u64, 2, 3, 4, 5];
    let mut table = Table::new(["family", "n", "mean d", "mean d'", "mean d'/d", "max d'/d"]);
    let mut internet_max_ratio = 0.0f64;
    // d' at the largest size, to contrast growth: the paper's remark is
    // about convergence time staying practical, i.e. d' staying small in
    // absolute terms on Internet-like graphs while adversarial topologies
    // let it grow with n.
    let mut internet_max_dprime_at_top = 0.0f64;
    let mut ring_dprime_at_top = 0.0f64;
    let top = *sizes.last().expect("non-empty sweep");
    for family in Family::ALL {
        for &n in &sizes {
            let mut ds = Vec::new();
            let mut dprimes = Vec::new();
            let mut ratios = Vec::new();
            for &seed in &seeds {
                let g = family.build(n, seed);
                let lcp = AllPairsLcp::compute(&g);
                let avoidance = AvoidanceTable::compute(&g, &lcp);
                let d = diameter::lcp_hop_diameter(&lcp) as f64;
                let dprime = diameter::avoiding_hop_diameter(&avoidance) as f64;
                ds.push(d);
                dprimes.push(dprime);
                ratios.push(dprime / d);
            }
            let max_ratio = stats::max(&ratios).unwrap();
            let max_dprime = stats::max(&dprimes).unwrap();
            match family {
                Family::Ring => {
                    if n == top {
                        ring_dprime_at_top = max_dprime;
                    }
                }
                Family::BarabasiAlbert | Family::Hierarchy | Family::Waxman => {
                    internet_max_ratio = internet_max_ratio.max(max_ratio);
                    if n == top {
                        internet_max_dprime_at_top = internet_max_dprime_at_top.max(max_dprime);
                    }
                }
                Family::ErdosRenyi => {}
            }
            table.row([
                family.name().to_string(),
                n.to_string(),
                format!("{:.1}", stats::mean(&ds)),
                format!("{:.1}", stats::mean(&dprimes)),
                format!("{:.2}", stats::mean(&ratios)),
                format!("{max_ratio:.2}"),
            ]);
        }
    }
    println!("{table}");

    // The constructed adversarial case behind the paper's warning: a wheel
    // with a free hub and an expensive rim. Every rim pair's LCP hops
    // through the hub (d = 2), but pricing the hub forces the k-avoiding
    // path to crawl the rim — d' grows linearly, so d'/d is unbounded.
    let mut wheel_table = Table::new(["wheel(n)", "d", "d'", "d'/d"]);
    for &n in &[16usize, 32, 64, 128] {
        let g = bgpvcg_netgraph::generators::structured::wheel(
            n,
            bgpvcg_netgraph::Cost::ZERO,
            bgpvcg_netgraph::Cost::new(10),
        );
        let lcp = AllPairsLcp::compute(&g);
        let avoidance = AvoidanceTable::compute(&g, &lcp);
        let d = diameter::lcp_hop_diameter(&lcp);
        let dprime = diameter::avoiding_hop_diameter(&avoidance);
        wheel_table.row([
            format!("wheel({n})"),
            d.to_string(),
            dprime.to_string(),
            format!("{:.1}", dprime as f64 / d as f64),
        ]);
    }
    println!("Constructed adversarial family (Sect. 6.2's 'in general, d' can be much higher'):");
    println!("{wheel_table}");
    println!(
        "Paper remark: d' can in general be much larger than d, but is not for the (real) AS graph."
    );
    println!(
        "\nVERDICT: at n = {top}, Internet-like families keep d' <= {internet_max_dprime_at_top:.0} \
         hops (d'/d <= {internet_max_ratio:.2}) so price convergence stays as fast as routing, \
         while the adversarial ring grows d' linearly to {ring_dprime_at_top:.0} — remark reproduced"
    );
    assert!(
        internet_max_dprime_at_top <= 16.0,
        "Internet-like families should keep d' small in absolute terms"
    );
    assert!(
        internet_max_ratio < 4.0,
        "Internet-like families should keep d' within a small factor of d"
    );
    assert!(
        ring_dprime_at_top >= (top - 2) as f64,
        "the ring's d' must grow linearly with n"
    );
}
