//! E17 — Theorem 1's uniqueness half, probed empirically.
//!
//! The paper: "there is only one strategyproof pricing scheme with this
//! property" (zero payment to non-transit nodes). Uniqueness quantifies
//! over all mechanisms and can't be tested exhaustively, but the natural
//! two-parameter family `p = β·c_k + α·margin` around the VCG rule can be
//! swept: for every `(α, β) ≠ (1, 1)` some agent on some instance has a
//! profitable lie, while `(1, 1)` never does. The grid of outcomes makes
//! the theorem's "knife-edge" visible.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e17_uniqueness`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_core::uniqueness::{find_profitable_lie, ScaledRule};
use bgpvcg_netgraph::generators::structured::fig1;
use bgpvcg_netgraph::{AsGraph, TrafficMatrix};

fn main() {
    println!("E17 — the VCG rule is a knife-edge: p = beta*c_k + alpha*margin\n");
    // Instances: the paper's own example plus one of each random family.
    let mut instances: Vec<(String, AsGraph)> = vec![("fig1".to_string(), fig1())];
    for family in [
        Family::ErdosRenyi,
        Family::BarabasiAlbert,
        Family::Hierarchy,
    ] {
        instances.push((family.name().to_string(), family.build(10, 91)));
    }

    let mut table = Table::new(["alpha \\ beta", "0", "1", "2"]);
    let mut vcg_clean = true;
    let mut others_broken = true;
    for alpha in 0..=2u64 {
        let mut row = vec![alpha.to_string()];
        for beta in 0..=2u64 {
            let rule = ScaledRule { alpha, beta };
            // A rule is "broken" if ANY instance admits a profitable lie.
            let mut broken_on: Option<String> = None;
            for (name, g) in &instances {
                let traffic = TrafficMatrix::uniform(g.node_count(), 1);
                if find_profitable_lie(g, &traffic, 15, rule)
                    .expect("valid instances")
                    .is_some()
                {
                    broken_on = Some(name.clone());
                    break;
                }
            }
            if rule == ScaledRule::VCG {
                vcg_clean &= broken_on.is_none();
            } else {
                others_broken &= broken_on.is_some();
            }
            row.push(match broken_on {
                Some(name) => format!("manipulable ({name})"),
                None => "STRATEGYPROOF".to_string(),
            });
        }
        table.row(row);
    }
    println!("{table}");
    println!(
        "Paper claim (Theorem 1): the VCG payment is the unique strategyproof rule that pays \
         nothing to non-transit nodes."
    );
    println!(
        "\nVERDICT: {}",
        if vcg_clean && others_broken {
            "only (alpha, beta) = (1, 1) survives the lie search — the uniqueness knife-edge \
             is exactly where Theorem 1 puts it"
        } else {
            "UNEXPECTED GRID SHAPE"
        }
    );
    assert!(vcg_clean && others_broken);
}
