//! Observability smoke run — the trace fixture behind `cargo xtask obs`.
//!
//! Two traced phases on the paper's Fig. 1 worked example, sharing one
//! telemetry handle:
//!
//! 1. **Pricing**: the full price-computation protocol converges, then the
//!    B–D link fails and the protocol reconverges (the residual graph is
//!    the 6-cycle X–A–Z–D–Y–B, still biconnected, so pricing reconverges
//!    exactly). Exercises `StageStart`, `RouteSelected`, `PriceRelaxed`,
//!    and `Quiescent`.
//! 2. **Plain BGP**: the price-free protocol converges, then the D–Z link
//!    fails; Z's transit routes through D flap away before alternatives
//!    are learned. Exercises `Withdrawn`.
//! 3. **Chaos**: the pricing protocol runs over seeded lossy channels with
//!    one node crash/restart, self-stabilizing to the fault-free fixpoint.
//!    Exercises `FaultInjected`, `Retransmit`, `SessionReset`, and
//!    `NodeRestart`.
//! 4. **Flight recorder**: a pricing engine is deliberately stalled (stage
//!    limit 1) with a divergence flight recorder attached; the dump it
//!    leaves behind must validate against the flight schema. The artifact
//!    lands at `--flight-out` if given, else in a temp dir it cleans up.
//! 5. **Byzantine quarantine**: an equivocating wire adversary runs on the
//!    Petersen graph under the online auditor; the tap's injections, the
//!    auditor's accusation, and the resulting quarantine are all narrated.
//!    Exercises `AdversaryInjected`, `AuditViolation`, and
//!    `NodeQuarantined`.
//!
//! A single invocation therefore emits every `TraceEvent` kind — and every
//! causal event carries its `cause`/`effect` provenance ids — which
//! `cargo xtask obs` validates line by line against the golden schema in
//! `crates/telemetry/trace-schema.json`.
//!
//! Run with: `cargo run -p bgpvcg-bench --bin obs_smoke -- \
//!     --trace-out trace.jsonl --metrics-out metrics.json \
//!     --flight-out flight.json`

use bgpvcg_bench::obs::ObsConfig;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::chaos::FaultPlan;
use bgpvcg_bgp::engine::SyncEngine;
use bgpvcg_bgp::telemetry::metric;
use bgpvcg_bgp::{Adversary, PlainBgpNode, Strategy, TopologyEvent};
use bgpvcg_core::protocol;
use bgpvcg_netgraph::generators::structured::{fig1, petersen, Fig1};
use bgpvcg_netgraph::{AsId, Cost};
use bgpvcg_telemetry::{flight, RingBufferSink, TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    let obs = ObsConfig::from_args();
    println!("obs_smoke — Fig. 1: traced pricing run + link failures\n");

    // Tee the event stream into a ring so this binary can summarize what
    // the --trace-out file (if any) received.
    let ring = Arc::new(RingBufferSink::new(1 << 12));
    let telemetry = obs.telemetry().tee(Arc::clone(&ring) as Arc<dyn TraceSink>);
    let g = fig1();

    // Phase 1: pricing protocol, converge, fail B–D, reconverge.
    let mut pricing = protocol::build_sync_engine(&g).expect("Fig. 1 is biconnected");
    pricing.attach_telemetry(&telemetry);
    let run = pricing.run_to_convergence();
    assert!(run.converged, "Fig. 1 pricing must converge");
    let reconverge = pricing.apply_event(TopologyEvent::LinkDown(Fig1::B, Fig1::D));
    assert!(reconverge.converged, "reconvergence after B-D failure");

    // Phase 2: plain BGP, converge, fail D–Z to flap routes away.
    let mut plain = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
    plain.attach_telemetry(&telemetry);
    assert!(plain.run_to_convergence().converged);
    assert!(
        plain
            .apply_event(TopologyEvent::LinkDown(Fig1::D, Fig1::Z))
            .converged
    );

    // Phase 3: pricing over seeded-faulty channels with a crash/restart;
    // the run must self-stabilize to the fault-free fixpoint.
    let fault_free = protocol::run_sync(&g).expect("Fig. 1 is biconnected");
    let plan = FaultPlan::lossy(7, 12).with_crash(3, Fig1::D, 9);
    let (chaos_outcome, chaos_report) =
        protocol::run_chaos_telemetry(&g, plan, 5_000, &telemetry).expect("chaos run");
    assert!(chaos_report.converged, "chaos run must quiesce");
    assert_eq!(
        chaos_outcome, fault_free.outcome,
        "chaos run must self-stabilize to the fault-free fixpoint"
    );

    // Phase 4: stall a fresh pricing engine on purpose so the divergence
    // flight recorder fires, and validate the artifact it leaves behind.
    let (flight_path, flight_tmp) = match obs.flight_out() {
        Some(path) => (path.to_path_buf(), None),
        None => {
            let dir = std::env::temp_dir().join(format!("bgpvcg-obs-smoke-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("flight temp dir");
            (dir.join("flight.json"), Some(dir))
        }
    };
    let mut stalled = protocol::build_sync_engine(&g).expect("Fig. 1 is biconnected");
    stalled.attach_telemetry(&telemetry);
    stalled.attach_flight_recorder(&flight_path, 64);
    stalled.set_stage_limit(1); // Fig. 1 pricing needs ~7 stages
    assert!(
        !stalled.run_to_convergence().converged,
        "stage limit 1 must abort the run"
    );
    let dump = std::fs::read_to_string(&flight_path).expect("stall must leave a flight dump");
    flight::validate_dump(&dump).expect("flight dump validates against the golden schema");
    println!(
        "flight recorder: stalled run dumped {} bytes to {}",
        dump.len(),
        flight_path.display()
    );
    if let Some(dir) = flight_tmp {
        std::fs::remove_dir_all(&dir).ok();
    }

    // Phase 5: a Byzantine equivocator under the online auditor. Petersen
    // is 3-connected, so quarantining the culprit is always a valid
    // recovery and the run reconverges on the honest residual graph.
    let adversarial = petersen(Cost::new(2));
    let culprit = AsId::new(4);
    let mut audited =
        protocol::build_audited_sync_engine(&adversarial).expect("Petersen is biconnected");
    audited.attach_telemetry(&telemetry);
    audited.set_adversary(culprit, Adversary::new(Strategy::Equivocate, 11));
    assert!(
        audited.run_to_convergence().converged,
        "audited adversarial run must reconverge after quarantine"
    );
    assert_eq!(
        audited.quarantined(),
        &[culprit],
        "the equivocator must be quarantined"
    );

    let mut kind_counts: BTreeMap<&str, u64> = BTreeMap::new();
    for event in ring.events() {
        *kind_counts.entry(event.kind()).or_insert(0) += 1;
    }
    let mut table = Table::new(["event kind", "count"]);
    for (kind, count) in &kind_counts {
        table.row([(*kind).to_string(), count.to_string()]);
    }
    println!("{table}");

    let snapshot = telemetry.snapshot();
    println!(
        "pricing: {} stages, {} messages; reconvergence: {} stages, {} messages",
        run.stages, run.messages, reconverge.stages, reconverge.messages
    );
    println!("chaos: {chaos_report}");
    println!(
        "registry: {} updates, {} relaxations, {} withdrawals",
        snapshot.counters[metric::UPDATES_SENT],
        snapshot.counters[metric::PRICE_RELAXATIONS],
        snapshot.counters[metric::ROUTES_WITHDRAWN],
    );

    // The whole point of this fixture: every event kind must be present.
    for kind in [
        "StageStart",
        "RouteSelected",
        "PriceRelaxed",
        "Withdrawn",
        "Quiescent",
        "FaultInjected",
        "Retransmit",
        "SessionReset",
        "NodeRestart",
        "AdversaryInjected",
        "AuditViolation",
        "NodeQuarantined",
    ] {
        assert!(
            kind_counts.get(kind).copied().unwrap_or(0) > 0,
            "smoke trace must contain at least one {kind} event"
        );
    }
    // Causal provenance: every route/price/withdrawal event must carry a
    // stamped effect id, and its cause must precede it in the monotone
    // update-id order (0 = caused by the environment, not by an update).
    let mut causal_events = 0u64;
    for event in ring.events() {
        let (cause, effect) = match event {
            TraceEvent::RouteSelected { cause, effect, .. }
            | TraceEvent::PriceRelaxed { cause, effect, .. }
            | TraceEvent::Withdrawn { cause, effect, .. } => (cause, effect),
            _ => continue,
        };
        causal_events += 1;
        assert!(effect > 0, "causal events are stamped with an update id");
        assert!(cause < effect, "causes precede their effects");
    }
    assert!(causal_events > 0, "smoke trace must contain causal events");
    println!(
        "\nVERDICT: all {} trace event kinds emitted; {causal_events} causal \
         events carry cause/effect provenance",
        kind_counts.len()
    );
    obs.finish();
}
