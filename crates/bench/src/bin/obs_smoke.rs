//! Observability smoke run — the trace fixture behind `cargo xtask obs`.
//!
//! Two traced phases on the paper's Fig. 1 worked example, sharing one
//! telemetry handle:
//!
//! 1. **Pricing**: the full price-computation protocol converges, then the
//!    B–D link fails and the protocol reconverges (the residual graph is
//!    the 6-cycle X–A–Z–D–Y–B, still biconnected, so pricing reconverges
//!    exactly). Exercises `StageStart`, `RouteSelected`, `PriceRelaxed`,
//!    and `Quiescent`.
//! 2. **Plain BGP**: the price-free protocol converges, then the D–Z link
//!    fails; Z's transit routes through D flap away before alternatives
//!    are learned. Exercises `Withdrawn`.
//! 3. **Chaos**: the pricing protocol runs over seeded lossy channels with
//!    one node crash/restart, self-stabilizing to the fault-free fixpoint.
//!    Exercises `FaultInjected`, `Retransmit`, `SessionReset`, and
//!    `NodeRestart`.
//! 4. **Flight recorder**: a pricing engine is deliberately stalled (stage
//!    limit 1) with a divergence flight recorder attached; the dump it
//!    leaves behind must validate against the flight schema. The artifact
//!    lands at `--flight-out` if given, else in a temp dir it cleans up.
//! 5. **Byzantine quarantine**: an equivocating wire adversary runs on the
//!    Petersen graph under the online auditor; the tap's injections, the
//!    auditor's accusation, and the resulting quarantine are all narrated.
//!    Exercises `AdversaryInjected`, `AuditViolation`, and
//!    `NodeQuarantined`. The span profiler rides along, covering the
//!    audit-shadow and adversary-tap phases on top of the hot path; its
//!    report lands at `--profile-out` (plus a `.folded` collapsed-stack
//!    sibling) and its totals are emitted as `SpanSummary` events.
//! 6. **Observed honest run**: a pricing engine with the streaming health
//!    monitor and profiler attached converges cleanly; the monitor must
//!    report **zero** findings, and its report (latency quantiles per
//!    destination) lands at `--health-out`.
//! 7. **Cost-flap oscillation**: node D's declared cost is toggled
//!    repeatedly, so routes through D revisit recently-abandoned
//!    signatures; the oscillation detector must fire **exactly once**,
//!    emitting the trace's `HealthVerdict`.
//! 8. **Health-stall post-mortem**: a chaos run under a permanent link
//!    flap stops making advertised-state progress while stages keep
//!    ticking; the stall detector arms the flight recorder with a
//!    `health-stall` dump *before* the stage budget runs out.
//!
//! A single invocation therefore emits every `TraceEvent` kind — and every
//! causal event carries its `cause`/`effect` provenance ids — which
//! `cargo xtask obs` validates line by line against the golden schema in
//! `crates/telemetry/trace-schema.json`.
//!
//! Run with: `cargo run -p bgpvcg-bench --bin obs_smoke -- \
//!     --trace-out trace.jsonl --metrics-out metrics.json \
//!     --flight-out flight.json --health-out health.json \
//!     --profile-out profile.json`

use bgpvcg_bench::obs::ObsConfig;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::chaos::{ChaosEngine, FaultPlan};
use bgpvcg_bgp::engine::SyncEngine;
use bgpvcg_bgp::telemetry::metric;
use bgpvcg_bgp::{Adversary, PlainBgpNode, Strategy, TopologyEvent};
use bgpvcg_core::protocol;
use bgpvcg_netgraph::generators::structured::{fig1, petersen, Fig1};
use bgpvcg_netgraph::{AsId, Cost};
use bgpvcg_telemetry::health::DETECTOR_OSCILLATION;
use bgpvcg_telemetry::{flight, HealthConfig, RingBufferSink, TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    let obs = ObsConfig::from_args();
    println!("obs_smoke — Fig. 1: traced pricing run + link failures\n");

    // Tee the event stream into a ring so this binary can summarize what
    // the --trace-out file (if any) received.
    let ring = Arc::new(RingBufferSink::new(1 << 12));
    let telemetry = obs.telemetry().tee(Arc::clone(&ring) as Arc<dyn TraceSink>);
    let g = fig1();

    // Phase 1: pricing protocol, converge, fail B–D, reconverge.
    let mut pricing = protocol::build_sync_engine(&g).expect("Fig. 1 is biconnected");
    pricing.attach_telemetry(&telemetry);
    let run = pricing.run_to_convergence();
    assert!(run.converged, "Fig. 1 pricing must converge");
    let reconverge = pricing.apply_event(TopologyEvent::LinkDown(Fig1::B, Fig1::D));
    assert!(reconverge.converged, "reconvergence after B-D failure");

    // Phase 2: plain BGP, converge, fail D–Z to flap routes away.
    let mut plain = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
    plain.attach_telemetry(&telemetry);
    assert!(plain.run_to_convergence().converged);
    assert!(
        plain
            .apply_event(TopologyEvent::LinkDown(Fig1::D, Fig1::Z))
            .converged
    );

    // Phase 3: pricing over seeded-faulty channels with a crash/restart;
    // the run must self-stabilize to the fault-free fixpoint.
    let fault_free = protocol::run_sync(&g).expect("Fig. 1 is biconnected");
    let plan = FaultPlan::lossy(7, 12).with_crash(3, Fig1::D, 9);
    let (chaos_outcome, chaos_report) =
        protocol::run_chaos_telemetry(&g, plan, 5_000, &telemetry).expect("chaos run");
    assert!(chaos_report.converged, "chaos run must quiesce");
    assert_eq!(
        chaos_outcome, fault_free.outcome,
        "chaos run must self-stabilize to the fault-free fixpoint"
    );

    // Phase 4: stall a fresh pricing engine on purpose so the divergence
    // flight recorder fires, and validate the artifact it leaves behind.
    let (flight_path, flight_tmp) = match obs.flight_out() {
        Some(path) => (path.to_path_buf(), None),
        None => {
            let dir = std::env::temp_dir().join(format!("bgpvcg-obs-smoke-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("flight temp dir");
            (dir.join("flight.json"), Some(dir))
        }
    };
    let mut stalled = protocol::build_sync_engine(&g).expect("Fig. 1 is biconnected");
    stalled.attach_telemetry(&telemetry);
    stalled.attach_flight_recorder(&flight_path, 64);
    stalled.set_stage_limit(1); // Fig. 1 pricing needs ~7 stages
    assert!(
        !stalled.run_to_convergence().converged,
        "stage limit 1 must abort the run"
    );
    let dump = std::fs::read_to_string(&flight_path).expect("stall must leave a flight dump");
    flight::validate_dump(&dump).expect("flight dump validates against the golden schema");
    println!(
        "flight recorder: stalled run dumped {} bytes to {}",
        dump.len(),
        flight_path.display()
    );
    if let Some(dir) = flight_tmp {
        std::fs::remove_dir_all(&dir).ok();
    }

    // Phase 5: a Byzantine equivocator under the online auditor. Petersen
    // is 3-connected, so quarantining the culprit is always a valid
    // recovery and the run reconverges on the honest residual graph.
    let adversarial = petersen(Cost::new(2));
    let culprit = AsId::new(4);
    let mut audited =
        protocol::build_audited_sync_engine(&adversarial).expect("Petersen is biconnected");
    audited.attach_telemetry(&telemetry);
    audited.attach_profiler();
    audited.set_adversary(culprit, Adversary::new(Strategy::Equivocate, 11));
    assert!(
        audited.run_to_convergence().converged,
        "audited adversarial run must reconverge after quarantine"
    );
    assert_eq!(
        audited.quarantined(),
        &[culprit],
        "the equivocator must be quarantined"
    );
    // The audited adversarial run exercises the widest span set: stage,
    // route-select, wire-encode, price-relax, audit-shadow, adversary-tap,
    // and the health-fold poll — ≥ 6 phases with nonzero counts.
    let profiler = audited.profiler().expect("profiler attached");
    let covered = (0..bgpvcg_telemetry::profile::span::NAMES.len())
        .filter(|&id| profiler.stat(id).0 > 0)
        .count();
    assert!(
        covered >= 6,
        "profile must cover >= 6 span phases, got {covered}"
    );
    assert_eq!(profiler.truncated(), 0, "span stack must never overflow");
    obs.write_profile(profiler);

    // Phase 6: an honest observed run — health monitor + profiler attached,
    // cleanly convergent, and therefore finding-free.
    let mut observed = protocol::build_sync_engine(&g).expect("Fig. 1 is biconnected");
    observed.attach_telemetry(&telemetry);
    observed.attach_health(HealthConfig::default());
    observed.attach_profiler();
    assert!(observed.run_to_convergence().converged);
    let honest_health = observed.health_sink().expect("health attached").snapshot();
    assert!(
        honest_health.findings().is_empty(),
        "honest convergence must raise zero health findings: {:?}",
        honest_health.findings()
    );
    assert!(
        !honest_health.latency().is_empty(),
        "quiescence must fold per-destination latency sketches"
    );
    obs.write_health(&honest_health);

    // Phase 7: flap D's declared cost so routes through D keep revisiting
    // recently-abandoned signatures — the oscillation detector must fire
    // exactly once (at most one finding per detector per run).
    let mut flappy = protocol::build_sync_engine(&g).expect("Fig. 1 is biconnected");
    flappy.attach_telemetry(&telemetry);
    flappy.attach_health(HealthConfig::default());
    assert!(flappy.run_to_convergence().converged);
    for round in 0..6u64 {
        let cost = if round % 2 == 0 {
            Cost::new(9)
        } else {
            Cost::new(1)
        };
        assert!(
            flappy
                .apply_event(TopologyEvent::CostChange(Fig1::D, cost))
                .converged,
            "each cost flap must still reconverge"
        );
    }
    let flap_findings = flappy.health_sink().expect("health attached").findings();
    assert_eq!(
        flap_findings.len(),
        1,
        "cost flapping must seed exactly one finding: {flap_findings:?}"
    );
    assert_eq!(flap_findings[0].detector, DETECTOR_OSCILLATION);
    println!(
        "health: cost flap seeded 1 oscillation finding (node {}, dest {}, {} revisits)",
        flap_findings[0].node, flap_findings[0].dest, flap_findings[0].count
    );

    // Phase 8: a permanent link flap starves the chaos run of progress;
    // the stall detector must write the health post-mortem before the
    // stage budget expires, and the dump must carry the health reason.
    let stall_dir = std::env::temp_dir().join(format!("bgpvcg-obs-stall-{}", std::process::id()));
    std::fs::create_dir_all(&stall_dir).expect("stall temp dir");
    let stall_path = stall_dir.join("flight_health_stall.json");
    let stall_plan = FaultPlan::quiet().with_flap(5, 10_000, Fig1::B, Fig1::D);
    let mut stall = ChaosEngine::new(&g, PlainBgpNode::from_graph(&g), stall_plan);
    stall.attach_telemetry(&telemetry);
    stall.attach_flight_recorder(&stall_path, 64);
    stall.attach_health(HealthConfig {
        stall_stages: 24,
        ..HealthConfig::default()
    });
    let stall_report = stall.run_to_stable(160);
    assert!(
        !stall_report.converged,
        "a permanently flapped link must not stabilize"
    );
    assert!(
        stall.health_sink().expect("health attached").stalled(),
        "the stall detector must fire before the stage budget"
    );
    let stall_dump =
        std::fs::read_to_string(&stall_path).expect("stall must leave a health post-mortem");
    flight::validate_dump(&stall_dump).expect("health post-mortem validates against the schema");
    assert!(
        stall_dump.contains(&format!("\"reason\":\"{}\"", flight::REASON_HEALTH_STALL)),
        "the post-mortem must carry the health-stall reason, not the generic one"
    );
    println!(
        "health: stalled chaos run dumped a {}-byte {} post-mortem",
        stall_dump.len(),
        flight::REASON_HEALTH_STALL
    );
    std::fs::remove_dir_all(&stall_dir).ok();

    let mut kind_counts: BTreeMap<&str, u64> = BTreeMap::new();
    for event in ring.events() {
        *kind_counts.entry(event.kind()).or_insert(0) += 1;
    }
    let mut table = Table::new(["event kind", "count"]);
    for (kind, count) in &kind_counts {
        table.row([(*kind).to_string(), count.to_string()]);
    }
    println!("{table}");

    let snapshot = telemetry.snapshot();
    println!(
        "pricing: {} stages, {} messages; reconvergence: {} stages, {} messages",
        run.stages, run.messages, reconverge.stages, reconverge.messages
    );
    println!("chaos: {chaos_report}");
    println!(
        "registry: {} updates, {} relaxations, {} withdrawals",
        snapshot.counters[metric::UPDATES_SENT],
        snapshot.counters[metric::PRICE_RELAXATIONS],
        snapshot.counters[metric::ROUTES_WITHDRAWN],
    );

    // The whole point of this fixture: every event kind must be present.
    for kind in [
        "StageStart",
        "RouteSelected",
        "PriceRelaxed",
        "Withdrawn",
        "Quiescent",
        "FaultInjected",
        "Retransmit",
        "SessionReset",
        "NodeRestart",
        "AdversaryInjected",
        "AuditViolation",
        "NodeQuarantined",
        "HealthVerdict",
        "SpanSummary",
    ] {
        assert!(
            kind_counts.get(kind).copied().unwrap_or(0) > 0,
            "smoke trace must contain at least one {kind} event"
        );
    }
    // Exactly the seeded findings: one oscillation (phase 7) plus one
    // stall (phase 8) — the honest phases contribute nothing.
    assert_eq!(
        kind_counts.get("HealthVerdict").copied().unwrap_or(0),
        2,
        "the trace must carry exactly the two seeded health verdicts"
    );
    // Causal provenance: every route/price/withdrawal event must carry a
    // stamped effect id, and its cause must precede it in the monotone
    // update-id order (0 = caused by the environment, not by an update).
    let mut causal_events = 0u64;
    for event in ring.events() {
        let (cause, effect) = match event {
            TraceEvent::RouteSelected { cause, effect, .. }
            | TraceEvent::PriceRelaxed { cause, effect, .. }
            | TraceEvent::Withdrawn { cause, effect, .. } => (cause, effect),
            _ => continue,
        };
        causal_events += 1;
        assert!(effect > 0, "causal events are stamped with an update id");
        assert!(cause < effect, "causes precede their effects");
    }
    assert!(causal_events > 0, "smoke trace must contain causal events");
    println!(
        "\nVERDICT: all {} trace event kinds emitted; {causal_events} causal \
         events carry cause/effect provenance",
        kind_counts.len()
    );
    obs.finish();
}
