//! E5 — Theorem 2 (state): routing tables stay `O(nd)`; the price extension
//! costs only a constant factor over plain BGP.
//!
//! Converges plain BGP and the pricing extension on identical topologies
//! and compares per-node state (table entries, stored path nodes, Rib-In,
//! price entries plus the AS cells labeling them) under a uniform
//! one-cell-per-value model. The paper claims "routing tables of size
//! O(nd) (i.e., ... only a constant-factor penalty on the BGP
//! routing-table size)". Price-table AS cells are counted the same way as
//! routing-table AS cells, so the factor reflects a deployable `(k, p^k)`
//! encoding rather than the in-memory aligned-array trick.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e5_state_overhead`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::engine::SyncEngine;
use bgpvcg_bgp::{PlainBgpNode, ProtocolNode};
use bgpvcg_core::PricingBgpNode;
use bgpvcg_lcp::{diameter, AllPairsLcp};

fn main() {
    println!("E5 — Theorem 2: price extension is a constant-factor state increase\n");
    let sizes = [16usize, 32, 64, 128];
    let mut table = Table::new([
        "family",
        "n",
        "d",
        "n*d",
        "plain cells/node",
        "priced cells/node",
        "price entries/node",
        "price AS cells/node",
        "factor",
    ]);
    let mut max_factor = 0.0f64;
    for family in Family::ALL {
        for &n in &sizes {
            let g = family.build(n, 17);
            let lcp = AllPairsLcp::compute(&g);
            let d = diameter::lcp_hop_diameter(&lcp);

            let mut plain = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
            plain.run_to_convergence();
            let plain_cells: usize = plain.nodes().map(|node| node.state().total_cells()).sum();

            let mut priced = SyncEngine::new(&g, PricingBgpNode::from_graph(&g));
            priced.run_to_convergence();
            let priced_cells: usize = priced.nodes().map(|node| node.state().total_cells()).sum();
            let price_entries: usize = priced.nodes().map(|node| node.state().price_entries).sum();
            let price_path_nodes: usize = priced
                .nodes()
                .map(|node| node.state().price_path_nodes)
                .sum();

            let factor = priced_cells as f64 / plain_cells as f64;
            max_factor = max_factor.max(factor);
            // Theorem 2: price state per node is at most one entry per
            // transit node per destination, i.e. <= (n-1)(d-1) — and the
            // AS labels add exactly one cell per entry, so they obey the
            // same bound.
            for node in priced.nodes() {
                assert!(
                    node.state().price_entries <= (n - 1) * d,
                    "{} n={n}: price entries exceed O(nd)",
                    family.name()
                );
                assert!(
                    node.state().price_path_nodes <= (n - 1) * d,
                    "{} n={n}: price AS label cells exceed O(nd)",
                    family.name()
                );
            }
            table.row([
                family.name().to_string(),
                n.to_string(),
                d.to_string(),
                (n * d).to_string(),
                format!("{:.0}", plain_cells as f64 / n as f64),
                format!("{:.0}", priced_cells as f64 / n as f64),
                format!("{:.0}", price_entries as f64 / n as f64),
                format!("{:.0}", price_path_nodes as f64 / n as f64),
                format!("{factor:.3}"),
            ]);
        }
    }
    println!("{table}");
    println!("Paper claim: price state is O(nd) — a small constant factor over plain BGP.");
    println!(
        "\nVERDICT: worst state factor {max_factor:.3}x — {}",
        if max_factor < 2.0 {
            "constant-factor claim reproduced (well under 2x)"
        } else {
            "factor larger than expected"
        }
    );
    assert!(max_factor < 2.0);
}
