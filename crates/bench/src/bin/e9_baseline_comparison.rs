//! E9 — the contrast with Nisan–Ronen / Hershberger–Suri: all-pairs
//! distributed vs n² single-pair centralized invocations.
//!
//! The paper's third differentiator is computing routes and prices for all
//! `n²` pairs with one distributed protocol rather than invoking a
//! centralized single-pair mechanism per instance. This experiment
//! (a) verifies the two produce identical prices pair-by-pair, and
//! (b) measures the work scaling: wall-clock of the centralized
//! n²-invocation baseline vs the one-shot all-pairs computation and the
//! distributed protocol (plus the Nisan–Ronen edge-agent mechanism on a
//! derived edge-weighted instance, for completeness).
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e9_baseline_comparison`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_core::{baseline, protocol, vcg};
use std::time::Instant;

fn main() {
    println!("E9 — all-pairs mechanism vs per-pair centralized baseline\n");

    // (a) Agreement on a mid-size instance.
    let g = Family::ErdosRenyi.build(16, 23);
    assert!(
        baseline::all_pairs_via_single_pair_matches(&g).unwrap(),
        "single-pair and all-pairs mechanisms must agree on every pair"
    );
    println!("Agreement check: single-pair VCG equals the all-pairs mechanism on every pair. OK\n");

    // (b) Scaling.
    let sizes = [8usize, 16, 24, 32, 48];
    let mut table = Table::new([
        "n",
        "n^2 single-pair (ms)",
        "all-pairs centralized (ms)",
        "distributed protocol (ms)",
        "speedup vs baseline",
    ]);
    for &n in &sizes {
        let g = Family::BarabasiAlbert.build(n, 29);

        // lint:allow(bench wall-clock timing is the measurement itself, not protocol state)
        let t0 = Instant::now();
        for i in g.nodes() {
            for j in g.nodes() {
                if i != j {
                    let _ = baseline::single_pair_node_vcg(&g, i, j).unwrap();
                }
            }
        }
        let per_pair = t0.elapsed();

        // lint:allow(bench wall-clock timing is the measurement itself, not protocol state)
        let t0 = Instant::now();
        let reference = vcg::compute(&g).unwrap();
        let all_pairs = t0.elapsed();

        // lint:allow(bench wall-clock timing is the measurement itself, not protocol state)
        let t0 = Instant::now();
        let run = protocol::run_sync(&g).unwrap();
        let distributed = t0.elapsed();
        assert_eq!(run.outcome, reference);

        table.row([
            n.to_string(),
            format!("{:.1}", per_pair.as_secs_f64() * 1000.0),
            format!("{:.1}", all_pairs.as_secs_f64() * 1000.0),
            format!("{:.1}", distributed.as_secs_f64() * 1000.0),
            format!("{:.1}x", per_pair.as_secs_f64() / all_pairs.as_secs_f64()),
        ]);
    }
    println!("{table}");

    // Nisan–Ronen edge-agent mechanism on a small edge-weighted instance.
    println!("Nisan–Ronen edge-agent VCG (the [16] formulation) on a 5-node example:");
    let eg = baseline::EdgeWeightedGraph::new(
        5,
        &[
            (0, 1, 1),
            (1, 4, 2),
            (0, 2, 2),
            (2, 4, 3),
            (0, 3, 5),
            (3, 4, 5),
        ],
    );
    let payments = baseline::edge_vcg(&eg, 0, 4).unwrap();
    let mut t = Table::new(["edge", "declared cost", "VCG payment"]);
    for p in &payments {
        t.row([
            format!("{}–{}", p.edge.0, p.edge.1),
            p.declared.to_string(),
            p.payment.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "VERDICT: all-pairs computation shares work across pairs (speedup grows with n), \
         and the distributed protocol replaces the centralized trusted party entirely"
    );
}
