//! E3 — Sect. 5: plain BGP converges within `d` stages.
//!
//! Runs the price-free path-vector protocol on every family across a size
//! sweep and compares the measured synchronous stage count against the LCP
//! hop diameter `d`, the paper's bound. Also reports the per-stage per-link
//! message load the paper bounds by `O(nd)` entries.
//!
//! All table figures are sourced from the shared telemetry registry
//! (`bgp_messages_total` deltas, the `bgp_stages_to_quiescence` gauge —
//! see `docs/OBSERVABILITY.md`), cross-checked against the engine report.
//! Each run's event stream is additionally rebuilt into its causal
//! provenance DAG (`bgpvcg_telemetry::causal`): it must be a single valid
//! segment rooted at exactly `n` origin advertisements whose critical
//! path is bounded by the engine's own stage count; the table reports the
//! measured causal depth next to the stage count.
//!
//! Every run also carries the convergence health monitor (honest sweeps
//! must raise zero SLO findings) and the span profiler; the merged profile
//! lands at `--profile-out` and the final run's health report at
//! `--health-out`.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e3_bgp_convergence`
//! Optional: `--trace-out PATH` / `--metrics-out PATH` /
//! `--health-out PATH` / `--profile-out PATH`.

use bgpvcg_bench::families::Family;
use bgpvcg_bench::obs::ObsConfig;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::engine::SyncEngine;
use bgpvcg_bgp::telemetry::metric;
use bgpvcg_bgp::PlainBgpNode;
use bgpvcg_lcp::{diameter, AllPairsLcp};
use bgpvcg_telemetry::{CausalDag, HealthConfig, RingBufferSink, SpanProfiler, TraceSink};
use std::sync::Arc;

fn main() {
    let obs = ObsConfig::from_args();
    let telemetry = obs.telemetry();
    println!("E3 — Sect. 5: plain BGP computes all LCPs within d synchronous stages\n");
    let sizes = [16usize, 32, 64, 128];
    let mut table = Table::new([
        "family",
        "n",
        "links",
        "d (LCP diameter)",
        "stages",
        "stages <= d",
        "causal depth",
        "total msgs",
        "total entries",
    ]);
    let messages = telemetry.counter(metric::MESSAGES);
    let entries = telemetry.counter(metric::ENTRIES);
    let stages_gauge = telemetry.gauge(metric::STAGES_TO_QUIESCENCE);
    let mut all_within = true;
    let mut sweep_profile = SpanProfiler::engine();
    let mut last_health = None;
    for family in Family::ALL {
        for &n in &sizes {
            let g = family.build(n, 11);
            let lcp = AllPairsLcp::compute(&g);
            let d = diameter::lcp_hop_diameter(&lcp);
            let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
            // Tee this run's events into a private ring (the shared
            // registry and any --trace-out file still see everything) so
            // the causal DAG can be rebuilt and checked per run.
            let ring = Arc::new(RingBufferSink::new(1 << 16));
            let traced = telemetry.tee(Arc::clone(&ring) as Arc<dyn TraceSink>);
            engine.attach_telemetry(&traced);
            engine.attach_health(HealthConfig::default());
            engine.attach_profiler();
            let (messages_before, entries_before) = (messages.get(), entries.get());
            let report = engine.run_to_convergence();
            assert!(report.converged, "{} n={n}", family.name());
            // Honest convergence is the SLO baseline: zero findings.
            let health = engine.health_sink().expect("health attached").snapshot();
            assert!(
                health.findings().is_empty(),
                "{} n={n}: honest run raised health findings: {:?}",
                family.name(),
                health.findings()
            );
            last_health = Some(health);
            sweep_profile.merge(&engine.take_profiler().expect("profiler attached"));
            // The registry is the source of truth for the table; the engine
            // report must agree (observation is non-perturbing).
            let run_messages = messages.get() - messages_before;
            let run_entries = entries.get() - entries_before;
            let stages = stages_gauge.get() as usize;
            assert_eq!(run_messages, report.messages as u64);
            assert_eq!(run_entries, report.entries as u64);
            assert_eq!(stages, report.stages);
            let within = stages <= d;
            all_within &= within;
            // The causal provenance DAG of the run must be a single valid
            // segment: acyclic, rooted at exactly the n stage-0 origin
            // advertisements, with no causal chain outrunning the stage
            // count the engine itself reported.
            let dags = CausalDag::from_events(&ring.events());
            assert_eq!(
                dags.len(),
                1,
                "{} n={n}: one run, one segment",
                family.name()
            );
            let dag = &dags[0];
            dag.validate()
                .unwrap_or_else(|err| panic!("{} n={n}: {err}", family.name()));
            dag.validate_origin_roots()
                .unwrap_or_else(|err| panic!("{} n={n}: {err}", family.name()));
            assert_eq!(
                dag.roots().len(),
                n,
                "{} n={n}: one origin root per AS",
                family.name()
            );
            let depth = dag.critical_path().len().saturating_sub(1);
            assert!(
                depth <= stages,
                "{} n={n}: causal depth {depth} exceeds {stages} stages",
                family.name()
            );
            // Spot-check the routes themselves.
            for i in g.nodes().take(4) {
                for j in g.nodes().take(4) {
                    assert_eq!(
                        engine.node(i).selector().route(j).as_ref(),
                        lcp.route(i, j),
                        "{} n={n}: {i}->{j}",
                        family.name()
                    );
                }
            }
            table.row([
                family.name().to_string(),
                n.to_string(),
                g.link_count().to_string(),
                d.to_string(),
                stages.to_string(),
                within.to_string(),
                depth.to_string(),
                run_messages.to_string(),
                run_entries.to_string(),
            ]);
        }
    }
    println!("{table}");
    if let Some(health) = &last_health {
        obs.write_health(health);
    }
    obs.write_profile(&sweep_profile);
    println!("Paper claim: \"BGP converges within d stages of computation\".");
    println!(
        "\nVERDICT: {}",
        if all_within {
            "every run converged within d stages"
        } else {
            "BOUND VIOLATED"
        }
    );
    obs.finish();
    assert!(all_within);
}
