//! E12 (extension) — the paper's per-neighbor cost generalization.
//!
//! Sect. 3 of the paper claims its mechanism extends to per-edge costs
//! with the nodes still the strategic agents, "and hence the VCG mechanism
//! we describe here would remain strategyproof". This experiment validates
//! the implemented extension three ways: (a) with uniform per-neighbor
//! costs it reduces *exactly* to the base mechanism; (b) heterogeneous
//! link costs re-route and re-price as expected; (c) random cost-vector
//! lies are never profitable.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e12_neighbor_costs`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_core::{neighbor_costs, vcg};
use bgpvcg_netgraph::{Cost, TrafficMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("E12 — extension: per-neighbor (edge) transit costs, nodes as agents\n");

    // (a) Reduction: uniform per-neighbor costs == base mechanism, for both
    // the centralized computation and the distributed margin protocol.
    let mut reductions = 0;
    for family in Family::ALL {
        let base = family.build(16, 41);
        let lifted = neighbor_costs::NeighborCostGraph::uniform(&base);
        let reference = vcg::compute(&base).unwrap();
        assert_eq!(
            neighbor_costs::compute(&lifted).unwrap(),
            reference,
            "{} centralized",
            family.name()
        );
        let (distributed, report) = neighbor_costs::run_nc_sync(&lifted).unwrap();
        assert!(report.converged);
        assert_eq!(distributed, reference, "{} distributed", family.name());
        reductions += 1;
    }
    println!(
        "(a) Uniform-cost reduction: generalized mechanism (centralized AND distributed \
         margin protocol) == base mechanism on {reductions}/{reductions} families. OK\n"
    );

    // (b) + (c): randomized per-link costs; strategyproofness under vector lies.
    let n = 10;
    let lies_per_agent = 6;
    let mut table = Table::new([
        "family",
        "agents",
        "vector lies",
        "profitable",
        "min price - incurred",
    ]);
    let mut total_profitable = 0;
    for family in Family::ALL {
        let base = family.build(n, 43);
        let mut rng = StdRng::seed_from_u64(97);
        let mut g = neighbor_costs::NeighborCostGraph::uniform(&base);
        for k in base.nodes() {
            for &a in base.neighbors(k) {
                g = g
                    .with_recv_cost(k, a, Cost::new(rng.gen_range(0..10)))
                    .unwrap();
            }
        }
        let traffic = TrafficMatrix::uniform(n, 1);

        // The distributed margin protocol matches the centralized
        // computation on the heterogeneous instance too.
        let outcome = neighbor_costs::compute(&g).unwrap();
        let (distributed, _) = neighbor_costs::run_nc_sync(&g).unwrap();
        assert_eq!(distributed, outcome, "{} distributed", family.name());
        let mut min_margin = i128::MAX;
        for (_, _, pair) in outcome.pairs() {
            let nodes = pair.route().nodes();
            for &(k, p) in pair.prices() {
                let pos = nodes.iter().position(|&x| x == k).unwrap();
                let incurred = g.recv_cost(k, nodes[pos - 1]);
                min_margin = min_margin
                    .min(p.finite().unwrap() as i128 - incurred.finite().unwrap() as i128);
            }
        }

        let mut lies = 0;
        let mut profitable = 0;
        for k in g.nodes() {
            for _ in 0..lies_per_agent {
                let dev = neighbor_costs::deviate(&g, k, 12, &traffic, &mut rng).unwrap();
                lies += 1;
                if dev.profitable() {
                    profitable += 1;
                }
            }
        }
        total_profitable += profitable;
        table.row([
            family.name().to_string(),
            n.to_string(),
            lies.to_string(),
            profitable.to_string(),
            min_margin.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Paper claim (Sect. 3): with per-edge costs and nodes as agents, the VCG mechanism \
         remains strategyproof."
    );
    println!(
        "\nVERDICT: {total_profitable} profitable vector lies; prices always cover the incurred \
         per-link cost — extension behaves as the paper asserts"
    );
    assert_eq!(total_profitable, 0);
}
