//! E14 (scale) — laptop-scale end-to-end runs of the full pricing protocol,
//! serial vs parallel, with a machine-readable bench trajectory.
//!
//! Not a paper claim per se, but the reproduction's calibration note rates
//! the system "laptop-scale, fully working"; this experiment substantiates
//! that with wall-clock and footprint numbers for the complete pipeline
//! (generation → distributed pricing → verification against the
//! centralized reference) up to 256 ASs on Internet-like topologies.
//!
//! Each configuration runs twice — once on the serial reference engine and
//! once on the deterministic worker pool (`--workers`, default 4) — and the
//! binary asserts the two runs are bit-for-bit identical before timing is
//! even reported (see `docs/PERFORMANCE.md` for the determinism argument).
//! Besides the human table, the run appends to the perf record: a
//! machine-readable `BENCH_scale.json` at the repository root, validated in
//! CI by `cargo xtask bench --smoke` against
//! `crates/bench/bench-scale-schema.json`.
//!
//! Each serial run additionally carries the streaming health monitor
//! (honest scale runs must raise zero SLO findings) and the zero-alloc
//! span profiler; each JSON row gains an optional `span_nanos` block (the
//! per-phase hot-path breakdown, timing-exempt in `--compare`), and the
//! sweep-merged profile/health artifacts land at the shared
//! `--profile-out` / `--health-out` paths.
//!
//! Flags:
//!
//! * `--smoke` — small sizes (n ∈ {32, 64}) for CI; same schema.
//! * `--out PATH` — where to write the JSON (default: repo-root
//!   `BENCH_scale.json`).
//! * `--workers K` — parallel worker count (default 4).
//! * plus the shared observability surface (`--trace-out`,
//!   `--metrics-out`, `--health-out`, `--profile-out`, ... — see
//!   `bgpvcg_bench::obs`).
//!
//! Regenerate with: `cargo run --release -p bgpvcg-bench --bin e14_scale`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::obs::ObsConfig;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::{wire, ProtocolNode};
use bgpvcg_core::{protocol, vcg};
use bgpvcg_telemetry::profile::span;
use bgpvcg_telemetry::{HealthConfig, SpanProfiler};
use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

/// One family × size measurement, holding everything both report formats
/// (table and JSON) need.
struct Row {
    family: &'static str,
    n: usize,
    links: usize,
    stages: usize,
    messages: usize,
    bytes: usize,
    bytes_v2: usize,
    serial_nanos: u128,
    parallel_nanos: u128,
    encode_nanos: u128,
    /// Per-span `(name, total_nanos)` hot-path breakdown of the serial
    /// run, for spans that fired (emitted as the optional `span_nanos`
    /// JSON block).
    span_nanos: Vec<(&'static str, u64)>,
    exact: bool,
}

impl Row {
    /// Parallel speedup: serial wall-clock over parallel wall-clock.
    fn speedup(&self) -> f64 {
        self.serial_nanos as f64 / self.parallel_nanos as f64
    }
}

struct Config {
    smoke: bool,
    out: PathBuf,
    workers: usize,
}

fn usage() -> ! {
    eprintln!("usage: e14_scale [--smoke] [--out PATH] [--workers K]");
    exit(2);
}

fn parse_args() -> (Config, ObsConfig) {
    // Default output is the repo root regardless of the invoking cwd.
    let mut config = Config {
        smoke: false,
        out: PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_scale.json"
        )),
        workers: 4,
    };
    let (obs, rest) = ObsConfig::extract(std::env::args().skip(1));
    let mut args = rest.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => config.smoke = true,
            "--out" => match args.next() {
                Some(path) => config.out = PathBuf::from(path),
                None => {
                    eprintln!("`--out` requires a PATH argument");
                    usage();
                }
            },
            "--workers" => match args.next().and_then(|k| k.parse().ok()) {
                Some(k) if k >= 1 => config.workers = k,
                _ => {
                    eprintln!("`--workers` requires a positive integer");
                    usage();
                }
            },
            _ => {
                eprintln!("unknown argument `{arg}`");
                usage();
            }
        }
    }
    (config, obs)
}

/// Hand-written JSON emission (the workspace has no serde implementation);
/// the shape is pinned by `crates/bench/bench-scale-schema.json` and
/// validated by `cargo xtask bench`.
fn render_json(config: &Config, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if config.smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"workers\": {},\n", config.workers));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let mut span_block = String::new();
        for (j, (name, nanos)) in row.span_nanos.iter().enumerate() {
            span_block.push_str(&format!(
                "{}\"{name}\": {nanos}",
                if j == 0 { "" } else { ", " }
            ));
        }
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"n\": {}, \"links\": {}, \"stages\": {}, \
             \"messages\": {}, \"bytes\": {}, \"bytes_v2\": {}, \"serial_nanos\": {}, \
             \"parallel_nanos\": {}, \"speedup\": {:.4}, \"encode_nanos\": {}, \
             \"span_nanos\": {{{span_block}}}, \"exact\": {}}}{}\n",
            row.family,
            row.n,
            row.links,
            row.stages,
            row.messages,
            row.bytes,
            row.bytes_v2,
            row.serial_nanos,
            row.parallel_nanos,
            row.speedup(),
            row.encode_nanos,
            row.exact,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn main() {
    let (config, obs) = parse_args();
    println!("E14 — end-to-end scale on Internet-like topologies\n");
    let mut sweep_profile = SpanProfiler::engine();
    let mut last_health = None;
    let sizes: &[usize] = if config.smoke {
        &[32, 64]
    } else {
        &[64, 128, 192, 256]
    };
    let mut rows = Vec::new();
    let mut table = Table::new([
        "family",
        "n",
        "links",
        "stages",
        "messages",
        "MiB on wire",
        "MiB v2",
        "serial (s)",
        "parallel (s)",
        "speedup",
        "encode v2 (ms)",
        "verify vs centralized (s)",
        "exact",
    ]);
    for family in [Family::BarabasiAlbert, Family::Hierarchy] {
        for &n in sizes {
            let g = family.build(n, 61);

            // lint:allow(bench wall-clock timing is the measurement itself, not protocol state)
            let t0 = Instant::now();
            let mut engine = protocol::build_sync_engine(&g).expect("valid graph");
            engine.attach_telemetry(obs.telemetry());
            engine.attach_health(HealthConfig::default());
            engine.attach_profiler();
            let serial_report = engine.run_to_convergence();
            // Honest scale runs are the SLO baseline: zero findings.
            let health = engine.health_sink().expect("health attached").snapshot();
            assert!(
                health.findings().is_empty(),
                "{} n={n}: honest run raised health findings: {:?}",
                family.name(),
                health.findings()
            );
            last_health = Some(health);
            let profile = engine.take_profiler().expect("profiler attached");
            let span_nanos: Vec<(&'static str, u64)> = (0..span::NAMES.len())
                .filter_map(|id| {
                    let (count, total, _) = profile.stat(id);
                    (count > 0).then(|| (span::NAMES[id], total))
                })
                .collect();
            sweep_profile.merge(&profile);
            let serial_nodes = engine.into_nodes();
            let serial_outcome = protocol::outcome_from_nodes(&serial_nodes).expect("converged");
            let serial_time = t0.elapsed();
            assert!(serial_report.converged);

            // Encode-cost microfigure: v2-encode every node's full
            // converged table through one reused scratch buffer — the
            // hot-path encoder the engines run on every broadcast.
            let mut scratch = Vec::new();
            let mut encoded = 0usize;
            // lint:allow(bench wall-clock timing is the measurement itself, not protocol state)
            let t0 = Instant::now();
            for node in &serial_nodes {
                if let Some(tbl) = node.full_table() {
                    encoded += wire::update_size_v2_with(&mut scratch, &tbl);
                }
            }
            let encode_time = t0.elapsed();
            assert!(encoded > 0);

            // lint:allow(bench wall-clock timing is the measurement itself, not protocol state)
            let t0 = Instant::now();
            let parallel = protocol::run_sync_parallel(&g, config.workers).expect("valid graph");
            let parallel_time = t0.elapsed();

            // Determinism gate: the worker pool must be bit-for-bit
            // identical to the serial reference before timing counts.
            assert_eq!(serial_report, parallel.report, "{} n={n}", family.name());
            assert_eq!(serial_outcome, parallel.outcome, "{} n={n}", family.name());

            // lint:allow(bench wall-clock timing is the measurement itself, not protocol state)
            let t0 = Instant::now();
            let reference = vcg::compute(&g).unwrap();
            let exact = serial_outcome == reference;
            let verify_time = t0.elapsed();

            let row = Row {
                family: family.name(),
                n,
                links: g.link_count(),
                stages: serial_report.stages,
                messages: serial_report.messages,
                bytes: serial_report.bytes,
                bytes_v2: serial_report.bytes_v2,
                serial_nanos: serial_time.as_nanos(),
                parallel_nanos: parallel_time.as_nanos(),
                encode_nanos: encode_time.as_nanos(),
                span_nanos,
                exact,
            };
            table.row([
                row.family.to_string(),
                n.to_string(),
                row.links.to_string(),
                row.stages.to_string(),
                row.messages.to_string(),
                format!("{:.1}", row.bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.1}", row.bytes_v2 as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", serial_time.as_secs_f64()),
                format!("{:.2}", parallel_time.as_secs_f64()),
                format!("{:.2}x", row.speedup()),
                format!("{:.2}", encode_time.as_secs_f64() * 1000.0),
                format!("{:.2}", verify_time.as_secs_f64()),
                exact.to_string(),
            ]);
            assert!(exact, "{} n={n}", family.name());
            rows.push(row);
        }
    }
    println!("{table}");
    let json = render_json(&config, &rows);
    std::fs::write(&config.out, json)
        .unwrap_or_else(|err| panic!("cannot write {}: {err}", config.out.display()));
    println!("\nwrote {}", config.out.display());
    if let Some(health) = &last_health {
        obs.write_health(health);
    }
    obs.write_profile(&sweep_profile);
    obs.finish();
    let (v1, v2) = rows
        .iter()
        .fold((0usize, 0usize), |(a, b), r| (a + r.bytes, b + r.bytes_v2));
    println!(
        "\nVERDICT: the full pipeline (distributed pricing + centralized verification) runs \
         to exact agreement at n = 256 in seconds on commodity hardware; parallel runs are \
         asserted bit-identical to serial (speedup is hardware-dependent — see \
         docs/PERFORMANCE.md); wire v2 (varint + path-delta + price-delta) carries the same \
         update stream in {:.1}% of the v1 bytes",
        100.0 * v2 as f64 / v1 as f64
    );
}
