//! E14 (scale) — laptop-scale end-to-end runs of the full pricing protocol.
//!
//! Not a paper claim per se, but the reproduction's calibration note rates
//! the system "laptop-scale, fully working"; this experiment substantiates
//! that with wall-clock and footprint numbers for the complete pipeline
//! (generation → distributed pricing → verification against the
//! centralized reference) up to 256 ASs on Internet-like topologies.
//!
//! Regenerate with: `cargo run --release -p bgpvcg-bench --bin e14_scale`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_core::{protocol, vcg};
use std::time::Instant;

fn main() {
    println!("E14 — end-to-end scale on Internet-like topologies\n");
    let mut table = Table::new([
        "family",
        "n",
        "links",
        "stages",
        "messages",
        "MiB on wire",
        "protocol (s)",
        "verify vs centralized (s)",
        "exact",
    ]);
    for family in [Family::BarabasiAlbert, Family::Hierarchy] {
        for &n in &[64usize, 128, 192, 256] {
            let g = family.build(n, 61);
            let t0 = Instant::now();
            let run = protocol::run_sync(&g).expect("valid graph");
            let protocol_time = t0.elapsed();
            assert!(run.report.converged);

            let t0 = Instant::now();
            let reference = vcg::compute(&g).unwrap();
            let exact = run.outcome == reference;
            let verify_time = t0.elapsed();

            table.row([
                family.name().to_string(),
                n.to_string(),
                g.link_count().to_string(),
                run.report.stages.to_string(),
                run.report.messages.to_string(),
                format!("{:.1}", run.report.bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", protocol_time.as_secs_f64()),
                format!("{:.2}", verify_time.as_secs_f64()),
                exact.to_string(),
            ]);
            assert!(exact, "{} n={n}", family.name());
        }
    }
    println!("{table}");
    println!(
        "\nVERDICT: the full pipeline (distributed pricing + centralized verification) runs \
         to exact agreement at n = 256 in seconds on commodity hardware"
    );
}
