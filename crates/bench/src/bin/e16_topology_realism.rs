//! E16 (substitution check) — are the synthetic families Internet-like?
//!
//! The reproduction substitutes synthetic topologies for the proprietary AS
//! graph (DESIGN.md, "Substitutions"). The measured AS graph's structural
//! signature is well documented: power-law degrees (a few huge transit
//! hubs, most ASs with degree ≤ 3), strong *dis*assortativity (stubs attach
//! to hubs), small diameter. This experiment computes those metrics for
//! every family and checks the Internet-like ones actually exhibit the
//! signature — i.e. that the substitution argument in DESIGN.md holds for
//! the graphs the experiments really use.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e16_topology_realism`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_lcp::{diameter, AllPairsLcp};
use bgpvcg_netgraph::metrics;

fn main() {
    println!("E16 — structural signature of the synthetic families (n = 128, seed 81)\n");
    let mut table = Table::new([
        "family",
        "mean deg",
        "max deg",
        "hub dominance",
        "stub fraction",
        "clustering",
        "assortativity",
        "d",
    ]);
    let mut ba_ok = false;
    let mut hier_ok = false;
    for family in Family::ALL {
        let g = family.build(128, 81);
        let stats = metrics::degree_stats(&g);
        let clustering = metrics::clustering_coefficient(&g);
        let assortativity = metrics::degree_assortativity(&g);
        let lcp = AllPairsLcp::compute(&g);
        let d = diameter::lcp_hop_diameter(&lcp);
        table.row([
            family.name().to_string(),
            format!("{:.1}", stats.mean),
            stats.max.to_string(),
            format!("{:.1}", stats.hub_dominance),
            format!("{:.2}", stats.stub_fraction),
            format!("{:.3}", clustering),
            format!("{:.2}", assortativity),
            d.to_string(),
        ]);
        // The AS-graph signature: hubs, mostly-stub population,
        // disassortative mixing, small diameter.
        let signature = stats.hub_dominance > 3.0
            && stats.stub_fraction > 0.5
            && assortativity < 0.0
            && d <= 10;
        match family {
            Family::BarabasiAlbert => ba_ok = signature,
            Family::Hierarchy => hier_ok = signature,
            _ => {}
        }
    }
    println!("{table}");
    println!(
        "Reference signature of the measured AS graph: power-law degrees (hub dominance >> 1, \
         most nodes degree <= 3), disassortative (< 0), diameter well under 10."
    );
    println!(
        "\nVERDICT: {}",
        if ba_ok && hier_ok {
            "the Internet-like families used by E3–E15 reproduce the AS-graph signature; \
             the substitution argument holds for the graphs actually measured"
        } else {
            "A SUPPOSEDLY INTERNET-LIKE FAMILY LACKS THE SIGNATURE"
        }
    );
    assert!(ba_ok, "Barabási–Albert must match the AS-graph signature");
    assert!(
        hier_ok,
        "the ISP hierarchy must match the AS-graph signature"
    );
}
