//! E6 — Sect. 5/6: communication overhead of the price extension.
//!
//! Measures total messages, carried table entries, and modelled wire bytes
//! to convergence for plain BGP vs the pricing extension on identical
//! topologies. The paper claims a "corresponding constant-factor increase
//! in the communication requirements of BGP" (costs and prices ride inside
//! the existing routing message exchanges; no new messages).
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e6_communication`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::engine::SyncEngine;
use bgpvcg_bgp::PlainBgpNode;
use bgpvcg_core::PricingBgpNode;

fn main() {
    println!("E6 — communication to convergence: pricing vs plain BGP\n");
    let sizes = [16usize, 32, 64, 128];
    let mut table = Table::new([
        "family",
        "n",
        "plain msgs",
        "priced msgs",
        "msg factor",
        "plain KiB",
        "priced KiB",
        "byte factor",
    ]);
    let mut worst_byte_factor = 0.0f64;
    for family in Family::ALL {
        for &n in &sizes {
            let g = family.build(n, 19);
            let mut plain = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
            let plain_report = plain.run_to_convergence();
            let mut priced = SyncEngine::new(&g, PricingBgpNode::from_graph(&g));
            let priced_report = priced.run_to_convergence();
            assert!(plain_report.converged && priced_report.converged);

            let msg_factor = priced_report.messages as f64 / plain_report.messages as f64;
            let byte_factor = priced_report.bytes as f64 / plain_report.bytes as f64;
            worst_byte_factor = worst_byte_factor.max(byte_factor);
            table.row([
                family.name().to_string(),
                n.to_string(),
                plain_report.messages.to_string(),
                priced_report.messages.to_string(),
                format!("{msg_factor:.2}"),
                (plain_report.bytes / 1024).to_string(),
                (priced_report.bytes / 1024).to_string(),
                format!("{byte_factor:.2}"),
            ]);
        }
    }
    println!("{table}");
    println!("Paper claim: constant-factor communication increase (no new message types).");
    println!(
        "\nVERDICT: worst byte factor {worst_byte_factor:.2}x — {}",
        if worst_byte_factor < 8.0 {
            "bounded constant factor, as claimed (price relaxation adds extra rounds of the same messages)"
        } else {
            "factor grows suspiciously"
        }
    );
    assert!(worst_byte_factor < 8.0);
}
