//! E6 — Sect. 5/6: communication overhead of the price extension.
//!
//! Measures total messages, carried table entries, and modelled wire bytes
//! to convergence for plain BGP vs the pricing extension on identical
//! topologies. The paper claims a "corresponding constant-factor increase
//! in the communication requirements of BGP" (costs and prices ride inside
//! the existing routing message exchanges; no new messages).
//!
//! All traffic figures are per-run deltas of the shared registry's
//! `bgp_messages_total` / `bgp_bytes_total` counters (see
//! `docs/OBSERVABILITY.md`), cross-checked against the engine reports.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e6_communication`
//! Optional: `--trace-out PATH` / `--metrics-out PATH`.

use bgpvcg_bench::families::Family;
use bgpvcg_bench::obs::ObsConfig;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::engine::{RunReport, SyncEngine};
use bgpvcg_bgp::telemetry::metric;
use bgpvcg_bgp::PlainBgpNode;
use bgpvcg_bgp::ProtocolNode;
use bgpvcg_core::PricingBgpNode;
use bgpvcg_netgraph::AsGraph;

/// Runs `nodes` to convergence with telemetry attached and returns the
/// `(messages, bytes)` the run added to the shared registry.
fn measured_run<N: ProtocolNode>(
    g: &AsGraph,
    nodes: Vec<N>,
    obs: &ObsConfig,
) -> (u64, u64, RunReport) {
    let telemetry = obs.telemetry();
    let (messages, bytes) = (
        telemetry.counter(metric::MESSAGES),
        telemetry.counter(metric::BYTES),
    );
    let (m0, b0) = (messages.get(), bytes.get());
    let mut engine = SyncEngine::new(g, nodes);
    engine.attach_telemetry(telemetry);
    let report = engine.run_to_convergence();
    let (m, b) = (messages.get() - m0, bytes.get() - b0);
    assert_eq!(m, report.messages as u64);
    assert_eq!(b, report.bytes as u64);
    (m, b, report)
}

fn main() {
    let obs = ObsConfig::from_args();
    println!("E6 — communication to convergence: pricing vs plain BGP\n");
    let sizes = [16usize, 32, 64, 128];
    let mut table = Table::new([
        "family",
        "n",
        "plain msgs",
        "priced msgs",
        "msg factor",
        "plain KiB",
        "priced KiB",
        "byte factor",
    ]);
    let mut worst_byte_factor = 0.0f64;
    for family in Family::ALL {
        for &n in &sizes {
            let g = family.build(n, 19);
            let (plain_msgs, plain_bytes, plain_report) =
                measured_run(&g, PlainBgpNode::from_graph(&g), &obs);
            let (priced_msgs, priced_bytes, priced_report) =
                measured_run(&g, PricingBgpNode::from_graph(&g), &obs);
            assert!(plain_report.converged && priced_report.converged);

            let msg_factor = priced_msgs as f64 / plain_msgs as f64;
            let byte_factor = priced_bytes as f64 / plain_bytes as f64;
            worst_byte_factor = worst_byte_factor.max(byte_factor);
            table.row([
                family.name().to_string(),
                n.to_string(),
                plain_msgs.to_string(),
                priced_msgs.to_string(),
                format!("{msg_factor:.2}"),
                (plain_bytes / 1024).to_string(),
                (priced_bytes / 1024).to_string(),
                format!("{byte_factor:.2}"),
            ]);
        }
    }
    println!("{table}");
    println!("Paper claim: constant-factor communication increase (no new message types).");
    println!(
        "\nVERDICT: worst byte factor {worst_byte_factor:.2}x — {}",
        if worst_byte_factor < 8.0 {
            "bounded constant factor, as claimed (price relaxation adds extra rounds of the same messages)"
        } else {
            "factor grows suspiciously"
        }
    );
    obs.finish();
    assert!(worst_byte_factor < 8.0);
}
