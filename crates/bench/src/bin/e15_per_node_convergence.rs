//! E15 — Lemma 2 at its true granularity: per-node convergence times.
//!
//! The paper's Lemma 2 is finer than the `max(d, d′)` corollary: for each
//! source `i`, destination `j`, and transit node `k`, "after the first
//! `d_i = max{|P(c; i, j)|, |P_k(c; i, j)|}` stages, `i` knows the correct
//! path `P(c; i, j)` and the correct price `p^k_ij`". This experiment steps
//! the pricing protocol stage by stage, records when every single
//! `(i, j, k)` price entry (and every `(i, j)` route) last changed, and
//! checks each against its own per-entry bound — tens of thousands of
//! individual instances of Lemma 2, not one aggregate.
//!
//! Regenerate with: `cargo run --release -p bgpvcg-bench --bin e15_per_node_convergence`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::ProtocolNode;
use bgpvcg_core::protocol;
use bgpvcg_lcp::avoiding::AvoidanceTable;
use bgpvcg_lcp::AllPairsLcp;
use bgpvcg_netgraph::Cost;
use std::collections::HashMap;

fn main() {
    println!("E15 — Lemma 2 per-entry: stabilization stage <= max(|P(i,j)|, |P_k(i,j)|)\n");
    let mut table = Table::new([
        "family",
        "n",
        "entries checked",
        "within per-entry bound",
        "tight entries",
        "mean slack (stages)",
    ]);
    let mut all_ok = true;
    for family in Family::ALL {
        for &n in &[16usize, 32] {
            let g = family.build(n, 71);
            let lcp = AllPairsLcp::compute(&g);
            let avoidance = AvoidanceTable::compute(&g, &lcp);

            // Step the protocol, snapshotting every (i, j, k) price and
            // (i, j) route cost per stage.
            let mut engine = protocol::build_sync_engine(&g).expect("valid graph");
            // history[(i, j, k)] = (last stage the value changed, value)
            let mut last_change: HashMap<(u32, u32, u32), (usize, Option<Cost>)> = HashMap::new();
            let mut route_last_change: HashMap<(u32, u32), (usize, Option<Cost>)> = HashMap::new();
            let mut stage = 0usize;
            loop {
                let stepped = engine.step();
                if stepped.is_some() {
                    stage += 1; // label snapshots with the stage just executed
                }
                for node in engine.nodes() {
                    let i = node.id();
                    for j in g.nodes() {
                        if i == j {
                            continue;
                        }
                        let route_cost = node.selector().route_cost(j);
                        let entry = route_last_change
                            .entry((i.raw(), j.raw()))
                            .or_insert((stage, None));
                        if entry.1 != Some(route_cost) {
                            *entry = (stage, Some(route_cost));
                        }
                        // Prices for the final route's transit nodes.
                        if let Some(route) = lcp.route(i, j) {
                            for &k in route.transit_nodes() {
                                let price = node.price(j, k);
                                let slot = last_change
                                    .entry((i.raw(), j.raw(), k.raw()))
                                    .or_insert((stage, None));
                                if slot.1 != price {
                                    *slot = (stage, price);
                                }
                            }
                        }
                    }
                }
                if stepped.is_none() {
                    break;
                }
            }

            // Check every entry against its own Lemma-2 bound.
            let mut checked = 0usize;
            let mut within = 0usize;
            let mut tight = 0usize;
            let mut slack_sum = 0usize;
            for i in g.nodes() {
                for j in g.nodes() {
                    if i == j {
                        continue;
                    }
                    let route = lcp.route(i, j).expect("connected");
                    let lcp_hops = route.hops();
                    for &k in route.transit_nodes() {
                        let avoid_hops = avoidance.get(i, j, k).expect("biconnected").hops;
                        let bound = lcp_hops.max(avoid_hops);
                        let (stabilized, _) = last_change[&(i.raw(), j.raw(), k.raw())];
                        checked += 1;
                        if stabilized <= bound {
                            within += 1;
                            slack_sum += bound - stabilized;
                            if stabilized == bound {
                                tight += 1;
                            }
                        }
                    }
                    // Routes stabilize within |P(i,j)| stages.
                    let (route_stable, _) = route_last_change[&(i.raw(), j.raw())];
                    assert!(
                        route_stable <= lcp_hops,
                        "{}: route {i}->{j} stabilized at stage {route_stable} > |P| = {lcp_hops}",
                        family.name()
                    );
                }
            }
            all_ok &= checked == within;
            table.row([
                family.name().to_string(),
                n.to_string(),
                checked.to_string(),
                within.to_string(),
                tight.to_string(),
                format!("{:.2}", slack_sum as f64 / checked.max(1) as f64),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Paper claim (Lemma 2): after d_i = max(|P(c;i,j)|, |P_k(c;i,j)|) stages, node i knows \
         the correct path and price — checked here entry by entry."
    );
    println!(
        "\nVERDICT: {}",
        if all_ok {
            "every (i, j, k) price entry stabilized within its own Lemma-2 bound"
        } else {
            "SOME ENTRY EXCEEDED ITS BOUND"
        }
    );
    assert!(all_ok);
}
