//! E15 — Lemma 2 at its true granularity: per-node convergence times.
//!
//! The paper's Lemma 2 is finer than the `max(d, d′)` corollary: for each
//! source `i`, destination `j`, and transit node `k`, "after the first
//! `d_i = max{|P(c; i, j)|, |P_k(c; i, j)|}` stages, `i` knows the correct
//! path `P(c; i, j)` and the correct price `p^k_ij`". This experiment runs
//! the pricing protocol with the telemetry tracer attached and reads the
//! last-change stage of every `(i, j, k)` price cell (and every `(i, j)`
//! route) straight off the structured event stream — the tracer emits
//! `PriceRelaxed` / `RouteSelected` only when the advertised value actually
//! changed, so the last event per cell *is* its stabilization stage. Tens of
//! thousands of individual instances of Lemma 2, not one aggregate.
//!
//! Measurement note: this reads *advertised* stabilization (what neighbors
//! can observe), which is what Lemma 2's "i knows the correct price" means
//! on the wire. A cell whose internal table blips while the destination is
//! temporarily advertised via a different path counts as stable from its
//! last advertised change — a handful of entries therefore show one stage
//! more slack than the old internal-table sampling did; the bound check
//! itself is unaffected.
//!
//! Regenerate with: `cargo run --release -p bgpvcg-bench --bin e15_per_node_convergence`
//! Optional: `--trace-out PATH` / `--metrics-out PATH`.

use bgpvcg_bench::families::Family;
use bgpvcg_bench::obs::ObsConfig;
use bgpvcg_bench::table::Table;
use bgpvcg_core::protocol;
use bgpvcg_lcp::avoiding::AvoidanceTable;
use bgpvcg_lcp::AllPairsLcp;
use bgpvcg_telemetry::{RingBufferSink, TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    let obs = ObsConfig::from_args();
    println!("E15 — Lemma 2 per-entry: stabilization stage <= max(|P(i,j)|, |P_k(i,j)|)\n");
    let mut table = Table::new([
        "family",
        "n",
        "entries checked",
        "within per-entry bound",
        "tight entries",
        "mean slack (stages)",
    ]);
    let mut all_ok = true;
    for family in Family::ALL {
        for &n in &[16usize, 32] {
            let g = family.build(n, 71);
            let lcp = AllPairsLcp::compute(&g);
            let avoidance = AvoidanceTable::compute(&g, &lcp);

            // Tee the run's event stream into a ring buffer: the shared
            // --trace-out/--metrics-out telemetry observes everything, and
            // the ring is folded below into last-change stages.
            let ring = Arc::new(RingBufferSink::new(1 << 21));
            let ring_tel = obs.telemetry().tee(Arc::clone(&ring) as Arc<dyn TraceSink>);
            let mut engine = protocol::build_sync_engine(&g).expect("valid graph");
            engine.attach_telemetry(&ring_tel);
            let report = engine.run_to_convergence();
            assert!(report.converged, "{} n={n}", family.name());
            // last stage at which i's advertised price p^k_ij changed
            let mut price_last: BTreeMap<(u32, u32, u32), usize> = BTreeMap::new();
            // last stage at which i's advertised route to j changed
            let mut route_last: BTreeMap<(u32, u32), usize> = BTreeMap::new();
            for event in ring.events() {
                match event {
                    TraceEvent::PriceRelaxed {
                        node,
                        dest,
                        k,
                        stage,
                        ..
                    } => {
                        price_last.insert((node, dest, k), stage as usize);
                    }
                    TraceEvent::RouteSelected {
                        node, dest, stage, ..
                    }
                    | TraceEvent::Withdrawn {
                        node, dest, stage, ..
                    } => {
                        route_last.insert((node, dest), stage as usize);
                    }
                    _ => {}
                }
            }
            obs.telemetry().flush();

            // Check every entry against its own Lemma-2 bound.
            let mut checked = 0usize;
            let mut within = 0usize;
            let mut tight = 0usize;
            let mut slack_sum = 0usize;
            for i in g.nodes() {
                for j in g.nodes() {
                    if i == j {
                        continue;
                    }
                    let route = lcp.route(i, j).expect("connected");
                    let lcp_hops = route.hops();
                    for &k in route.transit_nodes() {
                        let avoid_hops = avoidance.get(i, j, k).expect("biconnected").hops;
                        let bound = lcp_hops.max(avoid_hops);
                        let stabilized = price_last[&(i.raw(), j.raw(), k.raw())];
                        checked += 1;
                        if stabilized <= bound {
                            within += 1;
                            slack_sum += bound - stabilized;
                            if stabilized == bound {
                                tight += 1;
                            }
                        }
                    }
                    // Routes stabilize within |P(i,j)| stages.
                    let route_stable = route_last[&(i.raw(), j.raw())];
                    assert!(
                        route_stable <= lcp_hops,
                        "{}: route {i}->{j} stabilized at stage {route_stable} > |P| = {lcp_hops}",
                        family.name()
                    );
                }
            }
            all_ok &= checked == within;
            table.row([
                family.name().to_string(),
                n.to_string(),
                checked.to_string(),
                within.to_string(),
                tight.to_string(),
                format!("{:.2}", slack_sum as f64 / checked.max(1) as f64),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Paper claim (Lemma 2): after d_i = max(|P(c;i,j)|, |P_k(c;i,j)|) stages, node i knows \
         the correct path and price — checked here entry by entry."
    );
    println!(
        "\nVERDICT: {}",
        if all_ok {
            "every (i, j, k) price entry stabilized within its own Lemma-2 bound"
        } else {
            "SOME ENTRY EXCEEDED ITS BOUND"
        }
    );
    obs.finish();
    assert!(all_ok);
}
