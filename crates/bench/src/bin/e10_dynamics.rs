//! E10 — Sect. 6: "the process of converging begins again each time a
//! route is changed".
//!
//! Converges the pricing protocol on Internet-like topologies, then applies
//! single topology events — link failures on and off LCPs, link
//! activations, and cost re-declarations — measuring reconvergence stages
//! and traffic, and verifying after every event that the distributed state
//! again equals a fresh centralized VCG computation on the changed network.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e10_dynamics`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::stats;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::TopologyEvent;
use bgpvcg_core::{protocol, vcg};
use bgpvcg_lcp::AllPairsLcp;
use bgpvcg_netgraph::{AsGraph, Cost};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Classifies a link as on-LCP (carries some selected route) or off-LCP.
fn link_on_some_lcp(lcp: &AllPairsLcp, a: bgpvcg_netgraph::AsId, b: bgpvcg_netgraph::AsId) -> bool {
    let n = lcp.node_count();
    for j in 0..n {
        let tree = lcp.tree(bgpvcg_netgraph::AsId::new(j as u32));
        for i in tree.reachable() {
            if let Some(route) = tree.route(i) {
                if route
                    .nodes()
                    .windows(2)
                    .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
                {
                    return true;
                }
            }
        }
    }
    false
}

fn main() {
    println!("E10 — reconvergence after topology events (pricing protocol)\n");
    let n = 32;
    let trials = 6;
    let mut table = Table::new([
        "family",
        "event",
        "trials",
        "mean stages",
        "max stages",
        "mean msgs",
        "exact after event",
    ]);
    // Note: there is no "link off every LCP" category — the direct link
    // between two ASs is always their own selected route (cost 0, one
    // hop), so every link carries at least one LCP. The hub category fails
    // a link at the highest-degree node instead, the worst blast radius.
    for family in [
        Family::BarabasiAlbert,
        Family::Hierarchy,
        Family::ErdosRenyi,
    ] {
        for event_kind in [
            "link-down (random)",
            "link-down (at hub)",
            "cost-change",
            "link-up",
        ] {
            let mut stages = Vec::new();
            let mut msgs = Vec::new();
            let mut all_exact = true;
            let mut done = 0;
            let mut seed = 0u64;
            while done < trials && seed < 200 {
                seed += 1;
                let g = family.build(n, seed);
                let lcp = AllPairsLcp::compute(&g);
                let mut rng = StdRng::seed_from_u64(1_000 + seed);

                // Pick an applicable event; skip seeds where none exists.
                let (event, expected): (TopologyEvent, AsGraph) = match event_kind {
                    "link-down (random)" | "link-down (at hub)" => {
                        let hub = g
                            .nodes()
                            .max_by_key(|&k| g.degree(k))
                            .expect("non-empty graph");
                        let candidates: Vec<_> = g
                            .links()
                            .iter()
                            .filter(|l| {
                                let touches_hub = l.a() == hub || l.b() == hub;
                                (event_kind.contains("hub") == touches_hub)
                                    && link_on_some_lcp(&lcp, l.a(), l.b())
                                    && g.without_link(l.a(), l.b())
                                        .is_ok_and(|g2| g2.is_biconnected())
                            })
                            .copied()
                            .collect();
                        if candidates.is_empty() {
                            continue;
                        }
                        let l = candidates[rng.gen_range(0..candidates.len())];
                        (
                            TopologyEvent::LinkDown(l.a(), l.b()),
                            g.without_link(l.a(), l.b()).unwrap(),
                        )
                    }
                    "cost-change" => {
                        let k = bgpvcg_netgraph::AsId::new(rng.gen_range(0..n as u32));
                        let new_cost = Cost::new(rng.gen_range(0..=20));
                        if new_cost == g.cost(k) {
                            continue;
                        }
                        (
                            TopologyEvent::CostChange(k, new_cost),
                            g.with_cost(k, new_cost),
                        )
                    }
                    "link-up" => {
                        // Add a random absent link.
                        let mut pair = None;
                        for _ in 0..50 {
                            let a = bgpvcg_netgraph::AsId::new(rng.gen_range(0..n as u32));
                            let b = bgpvcg_netgraph::AsId::new(rng.gen_range(0..n as u32));
                            if a != b && !g.has_link(a, b) {
                                pair = Some((a, b));
                                break;
                            }
                        }
                        let Some((a, b)) = pair else { continue };
                        (TopologyEvent::LinkUp(a, b), g.with_link(a, b).unwrap())
                    }
                    _ => unreachable!(),
                };

                let mut engine = protocol::build_sync_engine(&g).unwrap();
                engine.run_to_convergence();
                let report = engine.apply_event(event);
                if !report.converged {
                    all_exact = false;
                    continue;
                }
                let nodes: Vec<_> = engine.nodes().cloned().collect();
                let Ok(outcome) = protocol::outcome_from_nodes(&nodes) else {
                    all_exact = false;
                    continue;
                };
                let exact = vcg::compute(&expected)
                    .map(|r| r == outcome)
                    .unwrap_or(false);
                all_exact &= exact;
                stages.push(report.stages as f64);
                msgs.push(report.messages as f64);
                done += 1;
            }
            table.row([
                family.name().to_string(),
                event_kind.to_string(),
                done.to_string(),
                format!("{:.1}", stats::mean(&stages)),
                format!("{:.0}", stats::max(&stages).unwrap_or(0.0)),
                format!("{:.0}", stats::mean(&msgs)),
                all_exact.to_string(),
            ]);
            assert!(all_exact, "{} {event_kind}", family.name());
        }
    }
    println!("{table}");
    println!(
        "Paper claim: convergence restarts on route change; prices re-stabilize to VCG values."
    );
    println!("\nVERDICT: every post-event state matched a fresh centralized VCG computation");
}
