//! E11 (ablation) — incremental updates vs full-table exchanges.
//!
//! The paper's footnote 6: "In practice, BGP only sends the portion of the
//! routing table that has changed … Because the worst-case behavior is to
//! send the entire routing table, and we care about worst-case complexity,
//! we ignore this incremental aspect of BGP in the statements of our
//! bounds." This ablation quantifies the gap: the same protocol run with
//! incremental advertisements (the implementation default, like real BGP)
//! versus full-table-on-any-change (the paper's worst-case accounting
//! model). Both converge to identical routes; only traffic differs.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e11_ablation_full_table`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::engine::SyncEngine;
use bgpvcg_bgp::{LocalEvent, PlainBgpNode, ProtocolNode, StateSnapshot, Update};
use bgpvcg_netgraph::AsId;

/// A BGP speaker that re-sends its whole table whenever anything changes —
/// the worst-case behaviour the paper's complexity statements assume.
#[derive(Debug)]
struct FullTableNode(PlainBgpNode);

impl ProtocolNode for FullTableNode {
    fn id(&self) -> AsId {
        self.0.id()
    }
    fn start(&mut self) -> Option<Update> {
        self.0.start().and_then(|_| self.0.full_table())
    }
    fn handle(&mut self, updates: &[std::sync::Arc<Update>]) -> Option<Update> {
        self.0.handle(updates).and_then(|_| self.0.full_table())
    }
    fn apply_event(&mut self, event: LocalEvent) -> Option<Update> {
        self.0.apply_event(event).and_then(|_| self.0.full_table())
    }
    fn full_table(&self) -> Option<Update> {
        self.0.full_table()
    }
    fn reset(&mut self) {
        self.0.reset();
    }
    fn state(&self) -> StateSnapshot {
        self.0.state()
    }
}

fn main() {
    println!("E11 — ablation: incremental advertisements vs full-table exchanges\n");
    let sizes = [16usize, 32, 64];
    let mut table = Table::new([
        "family",
        "n",
        "stages (incr)",
        "stages (full)",
        "entries (incr)",
        "entries (full)",
        "KiB (incr)",
        "KiB (full)",
        "byte blowup",
    ]);
    for family in Family::ALL {
        for &n in &sizes {
            let g = family.build(n, 31);
            let mut incr = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
            let incr_report = incr.run_to_convergence();
            let mut full = SyncEngine::new(
                &g,
                PlainBgpNode::from_graph(&g)
                    .into_iter()
                    .map(FullTableNode)
                    .collect(),
            );
            let full_report = full.run_to_convergence();
            assert!(incr_report.converged && full_report.converged);
            // Both must compute identical routes.
            for i in g.nodes() {
                for j in g.nodes() {
                    assert_eq!(
                        incr.node(i).selector().route(j),
                        full.node(i).0.selector().route(j),
                        "{} n={n}: {i}->{j}",
                        family.name()
                    );
                }
            }
            table.row([
                family.name().to_string(),
                n.to_string(),
                incr_report.stages.to_string(),
                full_report.stages.to_string(),
                incr_report.entries.to_string(),
                full_report.entries.to_string(),
                (incr_report.bytes / 1024).to_string(),
                (full_report.bytes / 1024).to_string(),
                format!(
                    "{:.1}x",
                    full_report.bytes as f64 / incr_report.bytes as f64
                ),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Paper footnote 6: the bounds assume full-table exchanges as the worst case; real BGP \
         (and this implementation) sends only changes."
    );
    println!(
        "\nVERDICT: identical routes and stage counts; incremental updates save a growing \
         byte factor — the paper's worst-case accounting is conservative, as stated"
    );
}
