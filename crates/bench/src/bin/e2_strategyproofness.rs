//! E2 — Theorem 1: strategyproofness and the zero-payment normalization.
//!
//! Sweeps unilateral cost lies across every agent of every graph family and
//! reports the number of profitable deviations found (the theorem predicts
//! zero), alongside the two structural properties that pin the mechanism
//! down: prices are at least declared costs on-path, and nodes carrying no
//! transit traffic are paid nothing.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e2_strategyproofness`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_core::{accounting::PaymentLedger, strategy, vcg};
use bgpvcg_netgraph::TrafficMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E2 — Theorem 1: no unilateral lie about transit cost is ever profitable\n");
    let n = 12; // deviation sweeps recompute the mechanism per lie: keep instances small
    let lies_per_agent = 5;
    let mut table = Table::new([
        "family",
        "agents",
        "lies tested",
        "profitable lies",
        "max regret",
        "p >= c on path",
        "0 pay off path",
    ]);

    let mut total_lies = 0usize;
    let mut total_profitable = 0usize;
    for family in Family::ALL {
        let g = family.build(n, 7);
        let traffic = TrafficMatrix::uniform(n, 1);
        let mut rng = StdRng::seed_from_u64(1000 + n as u64);
        let outcomes = strategy::sweep_deviations(&g, &traffic, lies_per_agent, 15, &mut rng)
            .expect("family graphs satisfy the preconditions");
        let profitable = outcomes.iter().filter(|d| d.profitable()).count();
        let max_regret = outcomes.iter().map(|d| d.regret()).max().unwrap_or(0);

        // Structural checks on the truthful outcome.
        let truthful = vcg::compute(&g).unwrap();
        let individually_rational = truthful
            .pairs()
            .all(|(_, _, pair)| pair.prices().iter().all(|&(k, p)| p >= g.cost(k)));
        let ledger = PaymentLedger::settle(&truthful, &traffic).expect("converged outcome settles");
        let zero_pay_off_path = g
            .nodes()
            .filter(|&k| ledger.packets_carried(k) == 0)
            .all(|k| ledger.payment(k) == 0);

        total_lies += outcomes.len();
        total_profitable += profitable;
        table.row([
            family.name().to_string(),
            n.to_string(),
            outcomes.len().to_string(),
            profitable.to_string(),
            max_regret.to_string(),
            individually_rational.to_string(),
            zero_pay_off_path.to_string(),
        ]);
    }
    println!("{table}");
    println!("Paper claim: strategyproof — profitable lies must number exactly 0.");
    println!(
        "\nVERDICT: {total_profitable} profitable lies out of {total_lies} tested — {}",
        if total_profitable == 0 {
            "Theorem 1 reproduced"
        } else {
            "VIOLATION"
        }
    );
    assert_eq!(total_profitable, 0);
}
