//! E4 — Lemma 2 / Corollary 1 / Theorem 2: the pricing protocol converges
//! within `max(d, d′)` stages to exactly the VCG prices.
//!
//! For every family and size, runs the full pricing protocol, verifies the
//! distributed outcome equals the centralized Theorem-1 computation
//! bit-for-bit, and compares the stage count against the paper's
//! `max(d, d′)` bound.
//!
//! Stage counts are sourced from the telemetry registry's
//! `bgp_stages_to_quiescence` gauge, set by the engine at quiescence
//! (see `docs/OBSERVABILITY.md`), and cross-checked against the report.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e4_price_convergence`
//! Optional: `--trace-out PATH` / `--metrics-out PATH`.

use bgpvcg_bench::families::Family;
use bgpvcg_bench::obs::ObsConfig;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::telemetry::metric;
use bgpvcg_core::{protocol, vcg};
use bgpvcg_lcp::avoiding::AvoidanceTable;
use bgpvcg_lcp::{diameter, AllPairsLcp};

fn main() {
    let obs = ObsConfig::from_args();
    let telemetry = obs.telemetry();
    println!("E4 — Theorem 2: VCG prices computed exactly, within max(d, d') stages\n");
    let sizes = [16usize, 32, 64];
    let mut table = Table::new([
        "family",
        "n",
        "d",
        "d'",
        "max(d,d')",
        "stages",
        "within bound",
        "prices exact",
    ]);
    let mut all_ok = true;
    for family in Family::ALL {
        for &n in &sizes {
            let g = family.build(n, 13);
            let lcp = AllPairsLcp::compute(&g);
            let avoidance = AvoidanceTable::compute(&g, &lcp);
            let d = diameter::lcp_hop_diameter(&lcp);
            let dprime = diameter::avoiding_hop_diameter(&avoidance);
            let bound = d.max(dprime);

            let run =
                protocol::run_sync_telemetry(&g, telemetry).expect("family graphs are biconnected");
            let reference =
                vcg::from_parts(&g, &lcp, &avoidance).expect("family graphs are biconnected");
            let exact = run.outcome == reference;
            let stages = telemetry.gauge(metric::STAGES_TO_QUIESCENCE).get() as usize;
            assert_eq!(stages, run.report.stages, "gauge mirrors the report");
            let within = stages <= bound;
            all_ok &= exact && within && run.report.converged;

            table.row([
                family.name().to_string(),
                n.to_string(),
                d.to_string(),
                dprime.to_string(),
                bound.to_string(),
                stages.to_string(),
                within.to_string(),
                exact.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("Paper claim: \"computes the VCG prices correctly ... and converges in at most max(d, d') stages\".");
    println!(
        "\nVERDICT: {}",
        if all_ok {
            "distributed prices exact and within the stage bound on every run"
        } else {
            "CLAIM VIOLATED"
        }
    );
    obs.finish();
    assert!(all_ok);
}
