//! E13 (extension) — auditing the computation itself (Sect. 7's open
//! problem).
//!
//! The paper asks: "even if the ASs input their true costs, what is to
//! stop them from running a different algorithm that computes prices more
//! favorable to them?" This experiment evaluates the replay-and-diff
//! auditor in `bgpvcg-core::audit`: on honest converged networks it raises
//! no findings; against a battery of unilateral manipulations (inflated
//! price entries, understated route costs, suppressed routes, fabricated
//! cheaper paths) it flags the manipulator every time.
//!
//! A second battery routes the wire-level Byzantine [`Strategy`] models
//! (the E20 adversaries) through the *same offline auditor*, by feeding it
//! the one table a route collector would hold. That exposes the offline
//! vantage point's structural blind spot: **equivocation**. A collector
//! (or any single neighbor) sees one self-consistent table per AS; when
//! an equivocator hands it the honest copy, there is provably nothing to
//! find — only the cross-neighbor comparison of the online auditor
//! (`bgpvcg-core::audit::OnlineAuditor`, exercised by E20) can see that
//! two neighbors were told different stories. The table below shows every
//! strategy's lying copy is caught offline, while the equivocator's
//! honest copy draws zero findings.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e13_audit`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::{Adversary, RouteAdvertisement, RouteInfo, Strategy, Update};
use bgpvcg_core::{audit, protocol, PricingBgpNode};
use bgpvcg_netgraph::{AsGraph, AsId, Cost};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn converged_nodes(g: &AsGraph) -> Vec<PricingBgpNode> {
    let mut engine = protocol::build_sync_engine(g).unwrap();
    assert!(engine.run_to_convergence().converged);
    engine.into_nodes()
}

/// Applies one named manipulation to a node's advertisements; returns
/// `false` if the manipulation is inapplicable (e.g. no priced entry).
fn tamper(kind: &str, ads: &mut Vec<RouteAdvertisement>, rng: &mut StdRng) -> bool {
    match kind {
        "inflate price" => {
            for ad in ads.iter_mut() {
                if let RouteInfo::Reachable { prices, .. } = &mut ad.info {
                    if let Some(p) = prices.first_mut() {
                        if p.is_finite() {
                            *p += Cost::new(25);
                            return true;
                        }
                    }
                }
            }
            false
        }
        "understate cost" => {
            for ad in ads.iter_mut() {
                if let RouteInfo::Reachable { path_cost, .. } = &mut ad.info {
                    if path_cost.finite().is_some_and(|c| c > 0) {
                        *path_cost = Cost::ZERO;
                        return true;
                    }
                }
            }
            false
        }
        "suppress route" => {
            if ads.len() < 2 {
                return false;
            }
            let victim = rng.gen_range(0..ads.len());
            ads.remove(victim);
            true
        }
        "shorten path" => {
            for ad in ads.iter_mut() {
                if let RouteInfo::Reachable { path, prices, .. } = &mut ad.info {
                    if path.len() >= 3 {
                        // Claim a direct-ish route by deleting a transit hop.
                        // Shared paths are immutable: rebuild without it.
                        let mut entries = path.to_vec();
                        entries.remove(1);
                        *path = entries.into();
                        prices.clear();
                        return true;
                    }
                }
            }
            false
        }
        _ => unreachable!(),
    }
}

/// Routes one wire [`Strategy`] through the offline auditor: the subject's
/// converged full table is perturbed exactly as the adversary would
/// deliver it to the neighbor at adjacency position `rank`, and that
/// single observed table is audited against the honest neighborhood.
///
/// Returns `None` when the adversary left this delivery honest (no
/// injection — nothing for any auditor to find), otherwise the number of
/// offline findings against the perturbed table.
fn offline_findings(
    g: &AsGraph,
    nodes: &[PricingBgpNode],
    subject: AsId,
    strategy: Strategy,
    rank: usize,
) -> Option<usize> {
    let neighbors = g.neighbors(subject);
    let to = *neighbors.get(rank)?;
    let ads = audit::converged_advertisements(&nodes[subject.index()]);
    let table = |advertisements: Vec<RouteAdvertisement>| Update {
        from: subject,
        sender_costs: Vec::new(),
        advertisements,
        id: 0,
        causes: Vec::new(),
    };
    let mut adversary = Adversary::new(strategy, 11);
    if strategy == Strategy::Replay {
        // Replay needs history: prime the freeze memory with the
        // pre-convergence revision (the converged routes at their earlier,
        // not-yet-relaxed costs), so perturbing the final table re-sends
        // the stale copy.
        let stale: Vec<RouteAdvertisement> = ads
            .iter()
            .map(|ad| {
                let mut ad = ad.clone();
                if let RouteInfo::Reachable { path_cost, .. } = &mut ad.info {
                    *path_cost = path_cost.saturating_add(Cost::new(1));
                }
                ad
            })
            .collect();
        let _ = adversary.perturb(to, rank, &table(stale));
    }
    let perturbed = adversary.perturb(to, rank, &table(ads))?;
    let neighbor_tables: Vec<(AsId, Vec<RouteAdvertisement>)> = neighbors
        .iter()
        .map(|&a| (a, audit::converged_advertisements(&nodes[a.index()])))
        .collect();
    Some(audit::audit_node(g, subject, &perturbed.advertisements, &neighbor_tables).len())
}

fn main() {
    println!("E13 — replay-and-diff audit of the distributed computation (Sect. 7)\n");
    let n = 20;
    let kinds = [
        "inflate price",
        "understate cost",
        "suppress route",
        "shorten path",
    ];
    let mut table = Table::new([
        "family",
        "honest findings",
        "manipulations tried",
        "detected",
    ]);
    let mut total_tried = 0;
    let mut total_detected = 0;
    for family in [
        Family::BarabasiAlbert,
        Family::ErdosRenyi,
        Family::Hierarchy,
    ] {
        let g = family.build(n, 51);
        let nodes = converged_nodes(&g);
        let honest = audit::audit_network(&g, &nodes).len();

        let mut rng = StdRng::seed_from_u64(5151);
        let mut tried = 0;
        let mut detected = 0;
        for kind in kinds {
            for _ in 0..4 {
                let subject = AsId::new(rng.gen_range(0..n as u32));
                let mut ads = audit::converged_advertisements(&nodes[subject.index()]);
                if !tamper(kind, &mut ads, &mut rng) {
                    continue;
                }
                let neighbor_tables: Vec<(AsId, Vec<RouteAdvertisement>)> = g
                    .neighbors(subject)
                    .iter()
                    .map(|&a| (a, audit::converged_advertisements(&nodes[a.index()])))
                    .collect();
                tried += 1;
                if !audit::audit_node(&g, subject, &ads, &neighbor_tables).is_empty() {
                    detected += 1;
                }
            }
        }
        total_tried += tried;
        total_detected += detected;
        table.row([
            family.name().to_string(),
            honest.to_string(),
            tried.to_string(),
            detected.to_string(),
        ]);
        assert_eq!(honest, 0, "{}: honest network must pass", family.name());
    }
    println!("{table}");
    println!(
        "Paper's open problem: nothing in the mechanism stops an AS from running a different \
         algorithm; this auditor replays each node's computation from its neighbors' converged \
         advertisements."
    );

    // ── The wire-level Byzantine strategies through the offline lens ────
    //
    // The lying copy is audited (rank-1 delivery); for the equivocator the
    // honest rank-0 copy is audited too, demonstrating the blind spot.
    println!("\nWire strategies (E20 adversary models) through the offline auditor:\n");
    let g = Family::ErdosRenyi.build(n, 51);
    let nodes = converged_nodes(&g);
    let mut strategy_table =
        Table::new(["strategy", "injected", "detected", "honest-copy findings"]);
    let mut honest_copy_findings = 0usize;
    for strategy in Strategy::ALL {
        let mut injected = 0;
        let mut detected = 0;
        for idx in 0..n as u32 {
            let subject = AsId::new(idx);
            // Rank 1: a neighbor every strategy actually lies to.
            if let Some(findings) = offline_findings(&g, &nodes, subject, strategy, 1) {
                injected += 1;
                if findings > 0 {
                    detected += 1;
                }
            }
        }
        // Rank 0: the copy the equivocator keeps honest. For every other
        // strategy the perturbation is rank-independent, so this column
        // only separates equivocation.
        let honest_copy = if strategy == Strategy::Equivocate {
            let findings: usize = (0..n as u32)
                .filter_map(|idx| offline_findings(&g, &nodes, AsId::new(idx), strategy, 0))
                .sum();
            honest_copy_findings += findings;
            findings.to_string()
        } else {
            "n/a".to_string()
        };
        assert!(
            injected > 0,
            "{}: strategy must fire on this graph",
            strategy.name()
        );
        assert_eq!(
            detected,
            injected,
            "{}: every lying copy must be caught offline",
            strategy.name()
        );
        total_tried += injected;
        total_detected += detected;
        strategy_table.row([
            strategy.name().to_string(),
            injected.to_string(),
            detected.to_string(),
            honest_copy,
        ]);
    }
    println!("{strategy_table}");
    assert_eq!(
        honest_copy_findings, 0,
        "the equivocator's honest copy is clean — offline auditing cannot see equivocation"
    );
    println!(
        "Blind spot: the equivocator's honest copy draws {honest_copy_findings} findings — a \
         collector holding one table per AS provably cannot detect cross-neighbor inconsistency. \
         Only the online per-link comparison (E20) catches equivocation as such."
    );
    println!(
        "\nVERDICT: 0 findings on honest networks; {total_detected}/{total_tried} unilateral \
         manipulations detected; equivocation invisible offline (by construction)"
    );
    assert_eq!(total_detected, total_tried);
}
