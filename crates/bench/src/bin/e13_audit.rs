//! E13 (extension) — auditing the computation itself (Sect. 7's open
//! problem).
//!
//! The paper asks: "even if the ASs input their true costs, what is to
//! stop them from running a different algorithm that computes prices more
//! favorable to them?" This experiment evaluates the replay-and-diff
//! auditor in `bgpvcg-core::audit`: on honest converged networks it raises
//! no findings; against a battery of unilateral manipulations (inflated
//! price entries, understated route costs, suppressed routes, fabricated
//! cheaper paths) it flags the manipulator every time.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e13_audit`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::table::Table;
use bgpvcg_bgp::{RouteAdvertisement, RouteInfo};
use bgpvcg_core::{audit, protocol, PricingBgpNode};
use bgpvcg_netgraph::{AsGraph, AsId, Cost};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn converged_nodes(g: &AsGraph) -> Vec<PricingBgpNode> {
    let mut engine = protocol::build_sync_engine(g).unwrap();
    assert!(engine.run_to_convergence().converged);
    engine.into_nodes()
}

/// Applies one named manipulation to a node's advertisements; returns
/// `false` if the manipulation is inapplicable (e.g. no priced entry).
fn tamper(kind: &str, ads: &mut Vec<RouteAdvertisement>, rng: &mut StdRng) -> bool {
    match kind {
        "inflate price" => {
            for ad in ads.iter_mut() {
                if let RouteInfo::Reachable { prices, .. } = &mut ad.info {
                    if let Some(p) = prices.first_mut() {
                        if p.is_finite() {
                            *p += Cost::new(25);
                            return true;
                        }
                    }
                }
            }
            false
        }
        "understate cost" => {
            for ad in ads.iter_mut() {
                if let RouteInfo::Reachable { path_cost, .. } = &mut ad.info {
                    if path_cost.finite().is_some_and(|c| c > 0) {
                        *path_cost = Cost::ZERO;
                        return true;
                    }
                }
            }
            false
        }
        "suppress route" => {
            if ads.len() < 2 {
                return false;
            }
            let victim = rng.gen_range(0..ads.len());
            ads.remove(victim);
            true
        }
        "shorten path" => {
            for ad in ads.iter_mut() {
                if let RouteInfo::Reachable { path, prices, .. } = &mut ad.info {
                    if path.len() >= 3 {
                        // Claim a direct-ish route by deleting a transit hop.
                        // Shared paths are immutable: rebuild without it.
                        let mut entries = path.to_vec();
                        entries.remove(1);
                        *path = entries.into();
                        prices.clear();
                        return true;
                    }
                }
            }
            false
        }
        _ => unreachable!(),
    }
}

fn main() {
    println!("E13 — replay-and-diff audit of the distributed computation (Sect. 7)\n");
    let n = 20;
    let kinds = [
        "inflate price",
        "understate cost",
        "suppress route",
        "shorten path",
    ];
    let mut table = Table::new([
        "family",
        "honest findings",
        "manipulations tried",
        "detected",
    ]);
    let mut total_tried = 0;
    let mut total_detected = 0;
    for family in [
        Family::BarabasiAlbert,
        Family::ErdosRenyi,
        Family::Hierarchy,
    ] {
        let g = family.build(n, 51);
        let nodes = converged_nodes(&g);
        let honest = audit::audit_network(&g, &nodes).len();

        let mut rng = StdRng::seed_from_u64(5151);
        let mut tried = 0;
        let mut detected = 0;
        for kind in kinds {
            for _ in 0..4 {
                let subject = AsId::new(rng.gen_range(0..n as u32));
                let mut ads = audit::converged_advertisements(&nodes[subject.index()]);
                if !tamper(kind, &mut ads, &mut rng) {
                    continue;
                }
                let neighbor_tables: Vec<(AsId, Vec<RouteAdvertisement>)> = g
                    .neighbors(subject)
                    .iter()
                    .map(|&a| (a, audit::converged_advertisements(&nodes[a.index()])))
                    .collect();
                tried += 1;
                if !audit::audit_node(&g, subject, &ads, &neighbor_tables).is_empty() {
                    detected += 1;
                }
            }
        }
        total_tried += tried;
        total_detected += detected;
        table.row([
            family.name().to_string(),
            honest.to_string(),
            tried.to_string(),
            detected.to_string(),
        ]);
        assert_eq!(honest, 0, "{}: honest network must pass", family.name());
    }
    println!("{table}");
    println!(
        "Paper's open problem: nothing in the mechanism stops an AS from running a different \
         algorithm; this auditor replays each node's computation from its neighbors' converged \
         advertisements."
    );
    println!(
        "\nVERDICT: 0 findings on honest networks; {total_detected}/{total_tried} unilateral \
         manipulations detected"
    );
    assert_eq!(total_detected, total_tried);
}
