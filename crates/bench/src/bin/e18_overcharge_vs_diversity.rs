//! E18 (follow-on study) — overcharging shrinks with path diversity.
//!
//! Sect. 7 leaves overcharging as an open concern. The VCG premium for a
//! transit node is the *margin* between the LCP and the best path avoiding
//! it, so the premium is a function of path diversity: the closer the
//! second-best alternative, the less any node can extract. This study
//! makes that quantitative: starting from a sparse biconnected topology,
//! it adds random extra links and tracks the aggregate payment/cost ratio
//! — a concrete, reproducible handle on the paper's open problem (denser
//! peering ⇒ cheaper truthful routing).
//!
//! Tolerance note: the *worst-pair* premium falls sharply and is asserted
//! strictly. The *aggregate* ratio's endpoint sits within noise of its
//! start (with this vendored-rand stream, 1.93 → 1.96 across a 3-seed
//! sweep): random densification sometimes reroutes traffic onto longer
//! multi-transit paths whose summed premiums offset the per-link margin
//! shrink. The aggregate assertion therefore allows 5% slack — it guards
//! against the ratio *growing with* diversity, not against seed noise.
//!
//! The study closes with the *live* side of the same economics: the
//! distributed engine re-runs the sparsest and densest configurations
//! with the per-stage economics sampler attached
//! (`bgpvcg_core::econ::attach_economics`), tabulates the aggregate
//! premium trajectory stage by stage, and asserts the final sample is
//! *identical* to the settled payment ledger under uniform
//! one-packet-per-pair traffic — streaming attribution agrees with the
//! books, per AS, to the unit.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e18_overcharge_vs_diversity`
//! Optional: the shared observability flags (`--metrics-out` exports the
//! `vcg_premium_as_<k>` / `vcg_welfare_total` gauges; see
//! `bgpvcg_bench::obs`).

use bgpvcg_bench::families::Family;
use bgpvcg_bench::obs::ObsConfig;
use bgpvcg_bench::stats;
use bgpvcg_bench::table::Table;
use bgpvcg_core::accounting::PaymentLedger;
use bgpvcg_core::{econ, overcharge::OverchargeReport, protocol, vcg};
use bgpvcg_netgraph::{AsGraph, AsId, TrafficMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Adds `extra` random absent links to the graph.
fn densify(mut g: AsGraph, extra: usize, rng: &mut StdRng) -> AsGraph {
    let n = g.node_count() as u32;
    let mut added = 0;
    let mut guard = 0;
    while added < extra && guard < 10_000 {
        guard += 1;
        let a = AsId::new(rng.gen_range(0..n));
        let b = AsId::new(rng.gen_range(0..n));
        if a == b || g.has_link(a, b) {
            continue;
        }
        g = g.with_link(a, b).expect("validated absent link");
        added += 1;
    }
    g
}

/// Runs the distributed protocol on `g` with the economics sampler
/// attached, appends the aggregate premium trajectory to `table` under
/// `label`, and asserts the final sample equals the settled ledger
/// welfare for every AS (the streaming-attribution identity).
fn attribution_run(label: &str, g: &AsGraph, obs: &ObsConfig, table: &mut Table) -> u64 {
    let mut engine = protocol::build_sync_engine(g).expect("valid graph");
    engine.attach_telemetry(obs.telemetry());
    let shared = econ::attach_economics(&mut engine, g, 256, Some(obs.telemetry()));
    assert!(engine.run_to_convergence().converged, "{label}");
    let nodes = engine.into_nodes();
    let sampler = shared.lock().expect("economics sampler poisoned");
    let finals = sampler.final_premiums();
    let traffic = TrafficMatrix::uniform(g.node_count(), 1);
    let ledger = PaymentLedger::settle_from_nodes(&nodes, &traffic).expect("settles");
    for k in g.nodes() {
        assert_eq!(
            i128::from(finals[k.index()]),
            ledger.welfare(k, g.cost(k)),
            "{label}: live premium({k}) != settled ledger welfare"
        );
    }
    for (stage, welfare) in sampler.aggregate().iter() {
        let max_premium = sampler
            .per_as()
            .iter()
            .filter_map(|series| series.iter().find(|&(s, _)| s == stage).map(|(_, v)| v))
            .max()
            .unwrap_or(0);
        table.row([
            label.to_string(),
            stage.to_string(),
            welfare.to_string(),
            max_premium.to_string(),
        ]);
    }
    sampler.aggregate().last().expect("sampled at least once").1
}

fn main() {
    let obs = ObsConfig::from_args();
    println!("E18 — VCG premium vs path diversity (n = 32, 3 seeds/point)\n");
    let n = 32;
    let extra_links = [0usize, 8, 16, 32, 64, 128];
    let mut table = Table::new([
        "extra links",
        "mean links",
        "payments/costs (mean)",
        "max pair ratio (mean)",
    ]);
    let mut aggregate_by_step: Vec<f64> = Vec::new();
    let mut max_by_step: Vec<f64> = Vec::new();
    for &extra in &extra_links {
        let mut aggregate = Vec::new();
        let mut max_ratios = Vec::new();
        let mut link_counts = Vec::new();
        for seed in 0..3u64 {
            let base = Family::BarabasiAlbert.build(n, 100 + seed);
            let mut rng = StdRng::seed_from_u64(7_000 + seed);
            let g = densify(base, extra, &mut rng);
            link_counts.push(g.link_count() as f64);
            let outcome = vcg::compute(&g).expect("still biconnected");
            let report = OverchargeReport::analyze(&outcome);
            let (pay, cost) = report.totals();
            aggregate.push(pay as f64 / cost.max(1) as f64);
            max_ratios.push(report.max_ratio().unwrap_or(1.0));
        }
        let mean_aggregate = stats::mean(&aggregate);
        aggregate_by_step.push(mean_aggregate);
        max_by_step.push(stats::mean(&max_ratios));
        table.row([
            extra.to_string(),
            format!("{:.0}", stats::mean(&link_counts)),
            format!("{mean_aggregate:.2}"),
            format!("{:.1}", stats::mean(&max_ratios)),
        ]);
    }
    println!("{table}");

    // ── Live attribution: trajectory table + ledger identity ────────────
    // The sweep above prices fixpoints centrally; the distributed engine
    // exposes how the economy *gets there*. Replay the sparsest and
    // densest seed-0 configurations through the protocol with per-stage
    // premium sampling, and require the final sample to reconcile with
    // the settled payment ledger, AS by AS.
    let mut econ_table = Table::new(["graph", "stage", "aggregate premium", "max per-AS premium"]);
    let sparse = Family::BarabasiAlbert.build(n, 100);
    let dense = densify(sparse.clone(), *extra_links.last().unwrap(), &mut {
        StdRng::seed_from_u64(7_000)
    });
    let sparse_welfare = attribution_run("sparse (+0)", &sparse, &obs, &mut econ_table);
    let dense_welfare = attribution_run("dense (+128)", &dense, &obs, &mut econ_table);
    println!("{econ_table}");
    println!(
        "Live attribution: per-stage premiums settle to the payment ledger exactly \
         (uniform traffic); aggregate welfare {sparse_welfare} (sparse) vs \
         {dense_welfare} (dense)\n"
    );
    obs.finish();

    let first_aggregate = aggregate_by_step[0];
    let last_aggregate = *aggregate_by_step.last().expect("non-empty sweep");
    let first_max = max_by_step[0];
    let last_max = *max_by_step.last().expect("non-empty sweep");
    println!(
        "Sect. 7's open concern: total payments exceed costs; the premium is the k-avoiding \
         margin, so it is a path-diversity quantity."
    );
    println!(
        "\nVERDICT: path diversity reins in the *extremes* — the worst pair premium falls \
         from {first_max:.1}x to {last_max:.1}x as links multiply — while the typical \
         aggregate premium only eases ({first_aggregate:.2}x to {last_aggregate:.2}x): with \
         heterogeneous costs the second-best path keeps a gap, so VCG overpayment is tamed \
         but not eliminated by peering alone — sharpening, not contradicting, Sect. 7's \
         concern"
    );
    assert!(
        last_max < first_max / 1.5,
        "worst-case premium must shrink markedly ({first_max:.1} -> {last_max:.1})"
    );
    assert!(
        last_aggregate <= first_aggregate * 1.05,
        "aggregate premium must not grow with diversity beyond seed noise \
         ({first_aggregate:.2} -> {last_aggregate:.2})"
    );
}
