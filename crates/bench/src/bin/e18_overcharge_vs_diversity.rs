//! E18 (follow-on study) — overcharging shrinks with path diversity.
//!
//! Sect. 7 leaves overcharging as an open concern. The VCG premium for a
//! transit node is the *margin* between the LCP and the best path avoiding
//! it, so the premium is a function of path diversity: the closer the
//! second-best alternative, the less any node can extract. This study
//! makes that quantitative: starting from a sparse biconnected topology,
//! it adds random extra links and tracks the aggregate payment/cost ratio
//! — a concrete, reproducible handle on the paper's open problem (denser
//! peering ⇒ cheaper truthful routing).
//!
//! Tolerance note: the *worst-pair* premium falls sharply and is asserted
//! strictly. The *aggregate* ratio's endpoint sits within noise of its
//! start (with this vendored-rand stream, 1.93 → 1.96 across a 3-seed
//! sweep): random densification sometimes reroutes traffic onto longer
//! multi-transit paths whose summed premiums offset the per-link margin
//! shrink. The aggregate assertion therefore allows 5% slack — it guards
//! against the ratio *growing with* diversity, not against seed noise.
//!
//! Regenerate with: `cargo run -p bgpvcg-bench --bin e18_overcharge_vs_diversity`

use bgpvcg_bench::families::Family;
use bgpvcg_bench::stats;
use bgpvcg_bench::table::Table;
use bgpvcg_core::{overcharge::OverchargeReport, vcg};
use bgpvcg_netgraph::{AsGraph, AsId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Adds `extra` random absent links to the graph.
fn densify(mut g: AsGraph, extra: usize, rng: &mut StdRng) -> AsGraph {
    let n = g.node_count() as u32;
    let mut added = 0;
    let mut guard = 0;
    while added < extra && guard < 10_000 {
        guard += 1;
        let a = AsId::new(rng.gen_range(0..n));
        let b = AsId::new(rng.gen_range(0..n));
        if a == b || g.has_link(a, b) {
            continue;
        }
        g = g.with_link(a, b).expect("validated absent link");
        added += 1;
    }
    g
}

fn main() {
    println!("E18 — VCG premium vs path diversity (n = 32, 3 seeds/point)\n");
    let n = 32;
    let extra_links = [0usize, 8, 16, 32, 64, 128];
    let mut table = Table::new([
        "extra links",
        "mean links",
        "payments/costs (mean)",
        "max pair ratio (mean)",
    ]);
    let mut aggregate_by_step: Vec<f64> = Vec::new();
    let mut max_by_step: Vec<f64> = Vec::new();
    for &extra in &extra_links {
        let mut aggregate = Vec::new();
        let mut max_ratios = Vec::new();
        let mut link_counts = Vec::new();
        for seed in 0..3u64 {
            let base = Family::BarabasiAlbert.build(n, 100 + seed);
            let mut rng = StdRng::seed_from_u64(7_000 + seed);
            let g = densify(base, extra, &mut rng);
            link_counts.push(g.link_count() as f64);
            let outcome = vcg::compute(&g).expect("still biconnected");
            let report = OverchargeReport::analyze(&outcome);
            let (pay, cost) = report.totals();
            aggregate.push(pay as f64 / cost.max(1) as f64);
            max_ratios.push(report.max_ratio().unwrap_or(1.0));
        }
        let mean_aggregate = stats::mean(&aggregate);
        aggregate_by_step.push(mean_aggregate);
        max_by_step.push(stats::mean(&max_ratios));
        table.row([
            extra.to_string(),
            format!("{:.0}", stats::mean(&link_counts)),
            format!("{mean_aggregate:.2}"),
            format!("{:.1}", stats::mean(&max_ratios)),
        ]);
    }
    println!("{table}");
    let first_aggregate = aggregate_by_step[0];
    let last_aggregate = *aggregate_by_step.last().expect("non-empty sweep");
    let first_max = max_by_step[0];
    let last_max = *max_by_step.last().expect("non-empty sweep");
    println!(
        "Sect. 7's open concern: total payments exceed costs; the premium is the k-avoiding \
         margin, so it is a path-diversity quantity."
    );
    println!(
        "\nVERDICT: path diversity reins in the *extremes* — the worst pair premium falls \
         from {first_max:.1}x to {last_max:.1}x as links multiply — while the typical \
         aggregate premium only eases ({first_aggregate:.2}x to {last_aggregate:.2}x): with \
         heterogeneous costs the second-best path keeps a gap, so VCG overpayment is tamed \
         but not eliminated by peering alone — sharpening, not contradicting, Sect. 7's \
         concern"
    );
    assert!(
        last_max < first_max / 1.5,
        "worst-case premium must shrink markedly ({first_max:.1} -> {last_max:.1})"
    );
    assert!(
        last_aggregate <= first_aggregate * 1.05,
        "aggregate premium must not grow with diversity beyond seed noise \
         ({first_aggregate:.2} -> {last_aggregate:.2})"
    );
}
