//! Small numeric summaries for experiment output.

/// Mean of a slice (0.0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maximum of a slice (`None` for empty input).
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("finite values"))
}

/// Minimum of a slice (`None` for empty input).
pub fn min(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .min_by(|a, b| a.partial_cmp(b).expect("finite values"))
}

/// `(mean, min, max)` in one pass-ish call, formatted for tables.
pub fn summary(values: &[f64]) -> (f64, f64, f64) {
    (
        mean(values),
        min(values).unwrap_or(0.0),
        max(values).unwrap_or(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(mean(&v), 2.0);
        assert_eq!(max(&v), Some(3.0));
        assert_eq!(min(&v), Some(1.0));
        assert_eq!(summary(&v), (2.0, 1.0, 3.0));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max(&[]), None);
        assert_eq!(min(&[]), None);
    }
}
