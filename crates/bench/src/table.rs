//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple aligned-column table that renders like the tables in a paper;
/// every experiment binary prints one or more of these, and their output is
/// recorded verbatim in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing
    /// commas, quotes, or newlines) — for piping experiment output into
    /// plotting tools.
    pub fn render_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let render = |cells: &[String], out: &mut String| {
            let quoted: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&quoted.join(","));
            out.push('\n');
        };
        render(&self.headers, &mut out);
        for row in &self.rows {
            render(row, &mut out);
        }
        out
    }

    /// Renders with aligned columns (markdown-compatible pipes).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, " {cell:<w$} |");
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["n", "stages"]);
        t.row(["8", "4"]);
        t.row(["128", "12"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| n   |"));
        assert!(lines[1].starts_with("|---"));
        assert!(lines[3].contains("| 128 |"));
        // All lines equally wide.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn csv_rendering_quotes_when_needed() {
        let mut t = Table::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "says \"hi\""]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"says \"\"hi\"\"\"");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
