//! Shared observability CLI surface for experiment binaries.
//!
//! Every instrumented binary accepts the same two optional flags:
//!
//! * `--trace-out PATH` — stream the structured event trace as JSONL
//!   (one [`bgpvcg_telemetry::TraceEvent`] per line) to `PATH`.
//! * `--metrics-out PATH` — at exit, write the final metrics snapshot as
//!   JSON to `PATH` and as Prometheus text exposition to a sibling file
//!   with the extension replaced by `.prom`.
//! * `--flight-out PATH` — where a binary that wires up a divergence
//!   flight recorder ([`bgpvcg_telemetry::flight`]) should dump the
//!   last-events ring and state snapshot if a run overruns its stage
//!   budget. Binaries that attach no recorder accept and ignore it.
//! * `--health-out PATH` — at exit, write the streaming health monitor's
//!   report (`bgpvcg-health-v1`: findings plus per-destination
//!   convergence-latency quantiles; see [`bgpvcg_telemetry::health`]).
//! * `--profile-out PATH` — at exit, write the span profiler's report
//!   (`bgpvcg-profile-v1`) plus a collapsed-stack text sibling with the
//!   extension replaced by `.folded` (flamegraph-ready; see
//!   [`bgpvcg_telemetry::profile`]).
//!
//! Without flags the binaries behave exactly as before: the registry still
//! aggregates (the tables are printed from it), but nothing hits disk.
//! See `docs/OBSERVABILITY.md` for the event taxonomy and metric names.

use bgpvcg_telemetry::{expose, HealthMonitor, SpanProfiler, Telemetry};
use std::path::{Path, PathBuf};
use std::process::exit;

/// Parsed `--trace-out` / `--metrics-out` / `--flight-out` /
/// `--health-out` / `--profile-out` flags plus the [`Telemetry`] handle
/// they configure.
#[derive(Debug)]
pub struct ObsConfig {
    metrics_out: Option<PathBuf>,
    flight_out: Option<PathBuf>,
    health_out: Option<PathBuf>,
    profile_out: Option<PathBuf>,
    telemetry: Telemetry,
}

impl ObsConfig {
    /// Parses the process arguments. Unknown flags print usage to stderr
    /// and exit with status 2, so a typo never silently runs the (often
    /// minutes-long) sweep without its requested outputs.
    pub fn from_args() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Splits `args` into the shared observability flags (consumed into an
    /// `ObsConfig`) and everything else (returned for the binary's own
    /// parser). Lets experiments with their own CLIs (`--smoke`, `--out`,
    /// ...) still accept the shared `--trace-out`/.../`--profile-out`
    /// surface.
    pub fn extract<I: IntoIterator<Item = String>>(args: I) -> (Self, Vec<String>) {
        let mut obs_args = Vec::new();
        let mut rest = Vec::new();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            if matches!(
                arg.as_str(),
                "--trace-out" | "--metrics-out" | "--flight-out" | "--health-out" | "--profile-out"
            ) {
                match args.next() {
                    Some(path) => {
                        obs_args.push(arg);
                        obs_args.push(path);
                    }
                    None => {
                        eprintln!("`{arg}` requires a PATH argument");
                        exit(2);
                    }
                }
            } else {
                rest.push(arg);
            }
        }
        (Self::from_iter(obs_args), rest)
    }

    fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut trace_out: Option<PathBuf> = None;
        let mut metrics_out: Option<PathBuf> = None;
        let mut flight_out: Option<PathBuf> = None;
        let mut health_out: Option<PathBuf> = None;
        let mut profile_out: Option<PathBuf> = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let slot = match arg.as_str() {
                "--trace-out" => &mut trace_out,
                "--metrics-out" => &mut metrics_out,
                "--flight-out" => &mut flight_out,
                "--health-out" => &mut health_out,
                "--profile-out" => &mut profile_out,
                _ => {
                    eprintln!("unknown argument `{arg}`");
                    eprintln!(
                        "usage: <experiment> [--trace-out PATH] \
                         [--metrics-out PATH] [--flight-out PATH] \
                         [--health-out PATH] [--profile-out PATH]"
                    );
                    exit(2);
                }
            };
            match args.next() {
                Some(path) => *slot = Some(PathBuf::from(path)),
                None => {
                    eprintln!("`{arg}` requires a PATH argument");
                    exit(2);
                }
            }
        }
        let telemetry = match &trace_out {
            Some(path) => Telemetry::jsonl_file(path)
                .unwrap_or_else(|err| panic!("cannot open {}: {err}", path.display())),
            None => Telemetry::null(),
        };
        ObsConfig {
            metrics_out,
            flight_out,
            health_out,
            profile_out,
            telemetry,
        }
    }

    /// Where a flight-recorder dump should land if a run diverges, when
    /// the caller asked for one with `--flight-out`.
    pub fn flight_out(&self) -> Option<&Path> {
        self.flight_out.as_deref()
    }

    /// Where the health report should land (`--health-out`).
    pub fn health_out(&self) -> Option<&Path> {
        self.health_out.as_deref()
    }

    /// Where the profile report should land (`--profile-out`).
    pub fn profile_out(&self) -> Option<&Path> {
        self.profile_out.as_deref()
    }

    /// Writes `monitor`'s `bgpvcg-health-v1` report to the `--health-out`
    /// path, if one was given. Call once, with the sweep's merged (or
    /// final) monitor state.
    pub fn write_health(&self, monitor: &HealthMonitor) {
        if let Some(path) = &self.health_out {
            write_or_die(path, &monitor.to_json());
        }
    }

    /// Writes `profiler`'s `bgpvcg-profile-v1` report to the
    /// `--profile-out` path plus its collapsed-stack text to the
    /// `.folded` sibling, if a path was given.
    pub fn write_profile(&self, profiler: &SpanProfiler) {
        if let Some(path) = &self.profile_out {
            write_or_die(path, &profiler.to_json());
            write_or_die(&path.with_extension("folded"), &profiler.collapsed());
        }
    }

    /// The telemetry handle every run in the binary should share, so the
    /// final exposition aggregates the whole sweep.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Flushes the trace and writes the metrics expositions (JSON at the
    /// `--metrics-out` path, Prometheus text at its `.prom` sibling).
    /// Call once, after the last run.
    pub fn finish(&self) {
        self.telemetry.flush();
        let Some(path) = &self.metrics_out else {
            return;
        };
        let snapshot = self.telemetry.snapshot();
        write_or_die(path, &expose::json(&snapshot));
        write_or_die(
            &path.with_extension("prom"),
            &expose::prometheus_text(&snapshot),
        );
    }
}

fn write_or_die(path: &Path, contents: &str) {
    std::fs::write(path, contents)
        .unwrap_or_else(|err| panic!("cannot write {}: {err}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_telemetry::TraceEvent;

    #[test]
    fn no_flags_yields_a_null_sink_and_no_files() {
        let config = ObsConfig::from_iter(Vec::new());
        config
            .telemetry()
            .record(&TraceEvent::StageStart { stage: 1 });
        config.finish(); // must not write anywhere
        assert!(config.metrics_out.is_none());
        assert!(config.flight_out().is_none());
    }

    #[test]
    fn flight_out_is_parsed_and_exposed() {
        let config = ObsConfig::from_iter([
            "--flight-out".to_string(),
            "target/obs/flight.json".to_string(),
        ]);
        assert_eq!(
            config.flight_out().unwrap().to_str().unwrap(),
            "target/obs/flight.json"
        );
    }

    #[test]
    fn extract_splits_obs_flags_from_binary_flags() {
        let (config, rest) = ObsConfig::extract(
            [
                "--smoke",
                "--health-out",
                "target/obs/health.json",
                "--out",
                "x.json",
                "--profile-out",
                "target/obs/profile.json",
            ]
            .map(str::to_string),
        );
        assert_eq!(
            config.health_out().unwrap().to_str().unwrap(),
            "target/obs/health.json"
        );
        assert_eq!(
            config.profile_out().unwrap().to_str().unwrap(),
            "target/obs/profile.json"
        );
        assert!(config.flight_out().is_none());
        assert_eq!(rest, ["--smoke", "--out", "x.json"]);
    }

    #[test]
    fn health_and_profile_writers_emit_schema_pinned_artifacts() {
        use bgpvcg_telemetry::profile::span;
        let dir = std::env::temp_dir().join("bgpvcg-obs-writers-test");
        std::fs::create_dir_all(&dir).unwrap();
        let health_path = dir.join("health.json");
        let profile_path = dir.join("profile.json");
        let config = ObsConfig::from_iter([
            "--health-out".to_string(),
            health_path.display().to_string(),
            "--profile-out".to_string(),
            profile_path.display().to_string(),
        ]);
        config.write_health(&HealthMonitor::new(Default::default()));
        let mut profiler = SpanProfiler::engine();
        profiler.enter(span::STAGE, 10);
        profiler.exit(30);
        config.write_profile(&profiler);
        let health = std::fs::read_to_string(&health_path).unwrap();
        assert!(health.contains("bgpvcg-health-v1"), "{health}");
        let profile = std::fs::read_to_string(&profile_path).unwrap();
        assert!(profile.contains("bgpvcg-profile-v1"), "{profile}");
        let folded = std::fs::read_to_string(profile_path.with_extension("folded")).unwrap();
        assert!(folded.contains("stage 20"), "{folded}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_out_writes_json_and_prom_siblings() {
        let dir = std::env::temp_dir().join("bgpvcg-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("metrics.json");
        let config =
            ObsConfig::from_iter(["--metrics-out".to_string(), json_path.display().to_string()]);
        config.telemetry().counter("bgp_messages_total").add(7);
        config.finish();
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"bgp_messages_total\":7"), "{json}");
        let prom = std::fs::read_to_string(json_path.with_extension("prom")).unwrap();
        assert!(prom.contains("bgp_messages_total 7"), "{prom}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
