//! Experiment harness regenerating every quantitative claim of the paper.
//!
//! The paper is a theory paper: its "evaluation" consists of a worked
//! example (Fig. 1/Fig. 2), three theorems, two lemmas, and explicit
//! complexity and convergence claims. This crate turns each into a
//! measurable experiment — one binary per experiment (`e1_worked_example`
//! through `e10_dynamics`, see `DESIGN.md` for the index) plus Criterion
//! micro-benchmarks (`benches/`).
//!
//! Shared infrastructure:
//!
//! * [`families`] — the graph families every sweep runs over (structured,
//!   random, and Internet-like).
//! * [`table`] — a plain-text table renderer so every binary prints
//!   paper-style rows that can be pasted into `EXPERIMENTS.md`.
//! * [`stats`] — small numeric summaries (mean/min/max).
//! * [`obs`] — the shared `--trace-out` / `--metrics-out` observability
//!   surface (see `docs/OBSERVABILITY.md`).

#![forbid(unsafe_code)]

pub mod families;
pub mod obs;
pub mod stats;
pub mod table;
