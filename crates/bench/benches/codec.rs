//! Criterion microbench for the wire codec — v1 (fixed-width) vs v2
//! (varint + path-delta + price-delta), encode and decode, over realistic
//! message mixes harvested from converged networks.
//!
//! Two workloads per size:
//!
//! * **full** — every node's full-table UPDATE at the pricing fixpoint,
//!   the cold-start / session-resync payload;
//! * **delta** — the same stream rewritten as price-delta advertisements
//!   (one entry per price cell), the steady-state relaxation traffic wire
//!   v2 is optimized for.
//!
//! v2 encoding goes through `encode_update_v2_into` with one reused
//! scratch buffer — the zero-allocation hot path the engines run on every
//! broadcast — so this bench also tracks the allocation discipline the
//! `stage-alloc` lint enforces statically.
//!
//! Run with: `cargo bench -p bgpvcg-bench --bench codec`

use bgpvcg_bench::families::Family;
use bgpvcg_bgp::{wire, ProtocolNode, RouteInfo, Update};
use bgpvcg_core::protocol;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Every node's full converged table at the pricing fixpoint.
fn full_tables(n: usize) -> Vec<Update> {
    let g = Family::BarabasiAlbert.build(n, 61);
    let mut engine = protocol::build_sync_engine(&g).expect("valid graph");
    assert!(engine.run_to_convergence().converged);
    engine
        .into_nodes()
        .iter()
        .filter_map(ProtocolNode::full_table)
        .collect()
}

/// Rewrites a full-table stream as the equivalent price-delta stream:
/// each reachable advertisement becomes a delta against its own path with
/// every price cell listed — the shape of steady-state relaxation rounds.
fn as_deltas(updates: &[Update]) -> Vec<Update> {
    updates
        .iter()
        .map(|u| {
            let mut u = u.clone();
            for ad in &mut u.advertisements {
                if let RouteInfo::Reachable { path, prices, .. } = &ad.info {
                    ad.info = RouteInfo::PriceDelta {
                        base_path_hash: path.hash64(),
                        entries: prices
                            .iter()
                            .copied()
                            .enumerate()
                            .map(|(i, p)| (u16::try_from(i).unwrap(), p))
                            .collect(),
                    };
                }
            }
            u
        })
        .collect()
}

fn ad_count(updates: &[Update]) -> usize {
    updates.iter().map(Update::entry_count).sum()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_encode");
    group.sample_size(20);
    for &n in &[64usize, 256] {
        let full = full_tables(n);
        let delta = as_deltas(&full);
        assert_eq!(ad_count(&full), ad_count(&delta));
        for (label, stream) in [("full", &full), ("delta", &delta)] {
            group.bench_with_input(
                BenchmarkId::new(format!("v1_{label}"), n),
                stream,
                |b, stream| {
                    b.iter(|| {
                        let mut total = 0usize;
                        for u in stream {
                            total += wire::encode_update(u).len();
                        }
                        black_box(total)
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("v2_{label}"), n),
                stream,
                |b, stream| {
                    b.iter(|| {
                        let mut scratch = Vec::new();
                        let mut total = 0usize;
                        for u in stream {
                            total += wire::update_size_v2_with(&mut scratch, u);
                        }
                        black_box(total)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_decode");
    group.sample_size(20);
    for &n in &[64usize, 256] {
        let full = full_tables(n);
        let delta = as_deltas(&full);
        for (label, stream) in [("full", &full), ("delta", &delta)] {
            let v1: Vec<Vec<u8>> = stream.iter().map(wire::encode_update).collect();
            let v2: Vec<Vec<u8>> = stream.iter().map(wire::encode_update_v2).collect();
            for (version, frames) in [("v1", v1), ("v2", v2)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{version}_{label}"), n),
                    &frames,
                    |b, frames| {
                        b.iter(|| {
                            let mut entries = 0usize;
                            for bytes in frames {
                                entries += wire::decode_update(bytes).unwrap().entry_count();
                            }
                            black_box(entries)
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
