//! Criterion benches for the routing substrate: per-destination Dijkstra,
//! all-pairs LCPs, the Bellman–Ford fixpoint, and k-avoiding path tables —
//! the computational kernels behind experiments E3/E4/E7.

use bgpvcg_bench::families::Family;
use bgpvcg_lcp::avoiding::AvoidanceTable;
use bgpvcg_lcp::{bellman, shortest_tree, AllPairsLcp};
use bgpvcg_netgraph::AsId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_single_destination(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_destination_tree");
    for &n in &[32usize, 64, 128, 256] {
        let g = Family::BarabasiAlbert.build(n, 5);
        group.bench_with_input(BenchmarkId::new("dijkstra", n), &g, |b, g| {
            b.iter(|| shortest_tree(black_box(g), AsId::new(0)))
        });
        group.bench_with_input(BenchmarkId::new("bellman_fixpoint", n), &g, |b, g| {
            b.iter(|| bellman::fixpoint(black_box(g), AsId::new(0)))
        });
    }
    group.finish();
}

fn bench_all_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_lcp");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let g = Family::BarabasiAlbert.build(n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| AllPairsLcp::compute(black_box(g)))
        });
    }
    group.finish();
}

fn bench_avoidance_table(c: &mut Criterion) {
    // Ablation: full punctured Dijkstra per (j, k) vs the subtree-local
    // relaxation exploiting the paper's Sect. 6.2 suffix structure.
    let mut group = c.benchmark_group("avoidance_table");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let g = Family::BarabasiAlbert.build(n, 5);
        let lcp = AllPairsLcp::compute(&g);
        group.bench_with_input(
            BenchmarkId::new("punctured_dijkstra", n),
            &(&g, &lcp),
            |b, (g, lcp)| b.iter(|| AvoidanceTable::compute(black_box(g), black_box(lcp))),
        );
        group.bench_with_input(
            BenchmarkId::new("subtree_relaxation", n),
            &(&g, &lcp),
            |b, (g, lcp)| b.iter(|| AvoidanceTable::compute_fast(black_box(g), black_box(lcp))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_destination,
    bench_all_pairs,
    bench_avoidance_table
);
criterion_main!(benches);
