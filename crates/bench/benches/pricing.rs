//! Criterion benches for the mechanism: Theorem-1 price computation,
//! payment settlement (Sect. 6.4), and overcharge analysis (Sect. 7).

use bgpvcg_bench::families::Family;
use bgpvcg_core::{accounting::PaymentLedger, overcharge::OverchargeReport, vcg};
use bgpvcg_netgraph::TrafficMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_vcg_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("vcg_compute");
    group.sample_size(10);
    for &n in &[16usize, 32, 64] {
        let g = Family::BarabasiAlbert.build(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| vcg::compute(black_box(g)).unwrap())
        });
    }
    group.finish();
}

fn bench_settlement(c: &mut Criterion) {
    let mut group = c.benchmark_group("payment_settlement");
    for &n in &[32usize, 64, 128] {
        let g = Family::BarabasiAlbert.build(n, 7);
        let outcome = vcg::compute(&g).unwrap();
        let traffic = TrafficMatrix::uniform(n, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&outcome, &traffic),
            |b, (outcome, traffic)| {
                b.iter(|| PaymentLedger::settle(black_box(outcome), black_box(traffic)))
            },
        );
    }
    group.finish();
}

fn bench_overcharge_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("overcharge_analysis");
    for &n in &[32usize, 64, 128] {
        let g = Family::BarabasiAlbert.build(n, 7);
        let outcome = vcg::compute(&g).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &outcome, |b, outcome| {
            b.iter(|| OverchargeReport::analyze(black_box(outcome)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_vcg_compute,
    bench_settlement,
    bench_overcharge_analysis
);
criterion_main!(benches);
