//! Criterion benches for the distributed protocol: plain BGP vs the
//! pricing extension to convergence on the synchronous engine — the
//! wall-clock companion to experiments E5/E6.

use bgpvcg_bench::families::Family;
use bgpvcg_bgp::engine::SyncEngine;
use bgpvcg_bgp::PlainBgpNode;
use bgpvcg_core::PricingBgpNode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_plain_bgp(c: &mut Criterion) {
    let mut group = c.benchmark_group("plain_bgp_convergence");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        let g = Family::BarabasiAlbert.build(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut engine = SyncEngine::new(g, PlainBgpNode::from_graph(g));
                black_box(engine.run_to_convergence())
            })
        });
    }
    group.finish();
}

fn bench_pricing_bgp(c: &mut Criterion) {
    let mut group = c.benchmark_group("pricing_bgp_convergence");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let g = Family::BarabasiAlbert.build(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut engine = SyncEngine::new(g, PricingBgpNode::from_graph(g));
                black_box(engine.run_to_convergence())
            })
        });
    }
    group.finish();
}

fn bench_families_at_fixed_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("pricing_convergence_by_family");
    group.sample_size(10);
    for family in Family::ALL {
        let g = family.build(48, 3);
        group.bench_with_input(BenchmarkId::from_parameter(family.name()), &g, |b, g| {
            b.iter(|| {
                let mut engine = SyncEngine::new(g, PricingBgpNode::from_graph(g));
                black_box(engine.run_to_convergence())
            })
        });
    }
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    use bgpvcg_bgp::{wire, PathEntry, RouteAdvertisement, RouteInfo, Update};
    use bgpvcg_netgraph::{AsId, Cost};
    // A realistic full-table update: 64 destinations, 5-hop paths, priced.
    let update = Update {
        from: AsId::new(0),
        sender_costs: (1..5)
            .map(|i| (AsId::new(i), Cost::new(u64::from(i))))
            .collect(),
        advertisements: (0..64u32)
            .map(|dest| RouteAdvertisement {
                destination: AsId::new(dest),
                info: RouteInfo::Reachable {
                    path: (0..5)
                        .map(|h| PathEntry {
                            node: AsId::new(dest.wrapping_add(h) % 1000),
                            cost: Cost::new(u64::from(h)),
                        })
                        .collect::<Vec<_>>()
                        .into(),
                    path_cost: Cost::new(10),
                    prices: vec![Cost::new(7); 3],
                },
            })
            .collect(),
        id: 0,
        causes: Vec::new(),
    };
    let bytes = wire::encode_update(&update);
    let mut group = c.benchmark_group("wire_codec");
    group.throughput(criterion::Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_64_entries", |b| {
        b.iter(|| wire::encode_update(black_box(&update)))
    });
    group.bench_function("decode_64_entries", |b| {
        b.iter(|| wire::decode_update(black_box(&bytes)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_plain_bgp,
    bench_pricing_bgp,
    bench_families_at_fixed_size,
    bench_wire_codec
);
criterion_main!(benches);
