//! Criterion microbench for a single stage of the synchronous engine —
//! the unit of work the paper bounds (`max(d, d′)` of these per run) and
//! the unit the dirty-set/worker-pool optimisations target.
//!
//! Each iteration builds a fresh engine and executes exactly one `step()`:
//! the origin broadcast plus the first (densest) stage of receiving-node
//! work. Construction is included deliberately — a `step()` on a reused
//! engine would measure an ever-later (and ever-emptier) stage, so fresh
//! construction is the only way to benchmark the same stage every time;
//! compare plain vs pricing at the same `n` rather than absolute numbers.
//!
//! Run with: `cargo bench -p bgpvcg-bench --bench stage`

use bgpvcg_bench::families::Family;
use bgpvcg_bgp::engine::SyncEngine;
use bgpvcg_bgp::PlainBgpNode;
use bgpvcg_core::PricingBgpNode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_plain_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("plain_bgp_stage");
    group.sample_size(20);
    for &n in &[64usize, 256] {
        let g = Family::BarabasiAlbert.build(n, 61);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut engine = SyncEngine::new(g, PlainBgpNode::from_graph(g));
                black_box(engine.step())
            })
        });
    }
    group.finish();
}

fn bench_pricing_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("pricing_bgp_stage");
    group.sample_size(20);
    for &n in &[64usize, 256] {
        let g = Family::BarabasiAlbert.build(n, 61);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut engine = SyncEngine::new(g, PricingBgpNode::from_graph(g));
                black_box(engine.step())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plain_stage, bench_pricing_stage);
criterion_main!(benches);
