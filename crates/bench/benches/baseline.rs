//! Criterion benches contrasting the paper's all-pairs mechanism with the
//! [12, 16]-style centralized single-pair baseline (experiment E9's
//! wall-clock companion).

use bgpvcg_bench::families::Family;
use bgpvcg_core::{baseline, protocol, vcg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_n_squared_single_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("n_squared_single_pair_baseline");
    group.sample_size(10);
    for &n in &[8usize, 16, 24] {
        let g = Family::BarabasiAlbert.build(n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                for i in g.nodes() {
                    for j in g.nodes() {
                        if i != j {
                            black_box(baseline::single_pair_node_vcg(g, i, j).unwrap());
                        }
                    }
                }
            })
        });
    }
    group.finish();
}

fn bench_all_pairs_mechanism(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_mechanism");
    group.sample_size(10);
    for &n in &[8usize, 16, 24] {
        let g = Family::BarabasiAlbert.build(n, 9);
        group.bench_with_input(BenchmarkId::new("centralized", n), &g, |b, g| {
            b.iter(|| black_box(vcg::compute(g).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("distributed", n), &g, |b, g| {
            b.iter(|| black_box(protocol::run_sync(g).unwrap()))
        });
    }
    group.finish();
}

fn bench_edge_vcg(c: &mut Criterion) {
    // Nisan–Ronen edge mechanism on a ladder of parallel two-edge paths.
    let mut group = c.benchmark_group("nisan_ronen_edge_vcg");
    for &paths in &[4usize, 16, 64] {
        let mut edges = Vec::new();
        let s = 0usize;
        let t = 1usize;
        for p in 0..paths {
            let mid = 2 + p;
            edges.push((s, mid, 1 + p as u64));
            edges.push((mid, t, 1 + p as u64));
        }
        let g = baseline::EdgeWeightedGraph::new(2 + paths, &edges);
        group.bench_with_input(BenchmarkId::from_parameter(paths), &g, |b, g| {
            b.iter(|| black_box(baseline::edge_vcg(g, 0, 1).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_n_squared_single_pair,
    bench_all_pairs_mechanism,
    bench_edge_vcg
);
criterion_main!(benches);
