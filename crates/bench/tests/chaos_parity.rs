//! Self-stabilization parity suite.
//!
//! The paper's mechanism has a unique `(routes, prices)` fixpoint, and the
//! chaos session layer guarantees eventual delivery of every routing
//! exchange. Together these make a strong testable claim: no matter what a
//! seeded fault schedule does to the network — drops, duplicates, delays,
//! link flaps, silent cuts, node crashes — once the faults cease, every
//! engine must reconverge to the *bit-identical* outcome of a fault-free
//! run. These properties sweep that claim over the benchmark topology
//! families × fault seeds.

use bgpvcg_bench::families::Family;
use bgpvcg_bgp::chaos::FaultPlan;
use bgpvcg_bgp::TopologyEvent;
use bgpvcg_core::protocol;
use bgpvcg_netgraph::generators::structured::hypercube;
use bgpvcg_netgraph::{AsId, Cost};
use proptest::prelude::*;

/// Generous stage budget: recovery after the fault horizon is bounded by a
/// few retransmit/hold rounds plus one reconvergence, far below this.
const MAX_STAGES: u64 = 5_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lossy channels: every topology family, any fault seed — the chaos
    /// run self-stabilizes to the fault-free pricing fixpoint.
    #[test]
    fn lossy_chaos_matches_fault_free_fixpoint(
        family_idx in 0usize..Family::ALL.len(),
        n in 8usize..13,
        seed in 0u64..u64::MAX,
    ) {
        let family = Family::ALL[family_idx];
        let graph = family.build(n, seed ^ 0x9E37_79B9);
        let reference = protocol::run_sync(&graph).unwrap().outcome;
        let (outcome, report) =
            protocol::run_chaos(&graph, FaultPlan::lossy(seed, 16), MAX_STAGES).unwrap();
        prop_assert!(report.converged, "did not quiesce: {report}");
        prop_assert_eq!(outcome, reference);
    }

    /// Crash and restart under loss: a node loses all state mid-run and
    /// rejoins from scratch; the network still reaches the fault-free
    /// fixpoint.
    #[test]
    fn crash_restart_chaos_matches_fault_free_fixpoint(
        family_idx in 0usize..Family::ALL.len(),
        n in 8usize..13,
        seed in 0u64..u64::MAX,
        victim in 0u32..1000,
    ) {
        let family = Family::ALL[family_idx];
        let graph = family.build(n, seed ^ 0x5851_F42D);
        let reference = protocol::run_sync(&graph).unwrap().outcome;
        let plan = FaultPlan::lossy(seed, 16)
            .with_crash(4, AsId::new(victim % n as u32), 11);
        let (outcome, report) = protocol::run_chaos(&graph, plan, MAX_STAGES).unwrap();
        prop_assert!(report.converged, "did not quiesce: {report}");
        prop_assert!(report.crashes == 1 && report.restarts == 1);
        prop_assert_eq!(outcome, reference);
    }

    /// The duplicate/delay-faulty asynchronous engine reaches the same
    /// fixpoint as the synchronous reference for any seed.
    #[test]
    fn faulty_async_matches_fault_free_fixpoint(
        family_idx in 0usize..Family::ALL.len(),
        n in 8usize..13,
        seed in 0u64..u64::MAX,
    ) {
        let family = Family::ALL[family_idx];
        let graph = family.build(n, seed ^ 0xA076_1D64);
        let reference = protocol::run_sync(&graph).unwrap().outcome;
        let mut plan = FaultPlan::lossy(seed, 16);
        plan.drop_rate = 0.0; // losses are the session layer's business
        let (outcome, _) = protocol::run_async_faulty(&graph, &plan).unwrap();
        prop_assert_eq!(outcome, reference);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: hold-timer implicit withdrawal ≡ explicit `LinkDown`.
    ///
    /// A silently cut link (frames vanish forever, no event delivered) must
    /// drive the chaos engine — via hold-timer expiry alone — to exactly
    /// the fixpoint the synchronous engine reaches when told about the
    /// failure explicitly, and that explicit fixpoint (outcome *and*
    /// report) must itself be identical across worker pools 1–8.
    #[test]
    fn hold_timer_cut_equals_explicit_link_down(seed in 0u64..u64::MAX) {
        // Q3 is 3-connected, so removing one edge keeps the mechanism's
        // biconnectivity precondition intact and all prices finite.
        let graph = hypercube(3, Cost::new(1 + seed % 7));
        let (a, b) = (AsId::new(0), AsId::new(1));

        // Reference: converge, then apply the explicit event — across
        // every worker count, demanding bit-identical outcome and report.
        let mut reference = None;
        for workers in 1..=8 {
            let mut engine =
                protocol::build_sync_engine_parallel(&graph, workers).unwrap();
            engine.run_to_convergence();
            let report = engine.apply_event(TopologyEvent::LinkDown(a, b));
            prop_assert!(report.converged);
            let outcome = protocol::outcome_from_nodes(&engine.into_nodes()).unwrap();
            match &reference {
                None => reference = Some((outcome, report)),
                Some((ref_outcome, ref_report)) => {
                    prop_assert_eq!(&outcome, ref_outcome, "workers={}", workers);
                    prop_assert_eq!(&report, ref_report, "workers={}", workers);
                }
            }
        }
        let (ref_outcome, _) = reference.unwrap();

        // Chaos: same link dies silently at stage 3; only the hold timer
        // can discover it.
        let plan = FaultPlan::quiet().with_cut(3, a, b);
        let (outcome, report) = protocol::run_chaos(&graph, plan, MAX_STAGES).unwrap();
        prop_assert!(report.converged, "did not quiesce: {report}");
        prop_assert!(report.holds_fired >= 2, "both endpoints must time out");
        prop_assert_eq!(outcome, ref_outcome);
    }
}
