//! Delta-stream ≡ full-advertisement equivalence suite.
//!
//! Wire v2's biggest win is the price-delta advertisement: when a node's
//! selected path for a destination is unchanged and only prices relaxed,
//! it sends `(index, price)` pairs against the previously advertised
//! path instead of repeating the whole annotated path. That is a pure
//! *encoding* optimization — receivers reassemble the full advertisement
//! from their adj-RIB-in before route selection ever sees it — so a run
//! with deltas enabled (the default) must be indistinguishable from one
//! with them disabled everywhere except the byte counters. These
//! properties sweep that claim over the benchmark topology families,
//! through topology dynamics, and under chaos-layer fault schedules.

use bgpvcg_bench::families::Family;
use bgpvcg_bgp::chaos::FaultPlan;
use bgpvcg_bgp::TopologyEvent;
use bgpvcg_core::protocol;
use bgpvcg_netgraph::{AsId, Cost};
use proptest::prelude::*;

const MAX_STAGES: u64 = 5_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cold-start convergence: deltas change bytes, nothing else. The
    /// `(routes, prices)` fixpoint and the stage/message/entry counters
    /// are bit-identical; the encoded stream only ever shrinks.
    #[test]
    fn delta_stream_reaches_the_full_advertisement_fixpoint(
        family_idx in 0usize..Family::ALL.len(),
        n in 8usize..24,
        seed in 0u64..u64::MAX,
    ) {
        let family = Family::ALL[family_idx];
        let graph = family.build(n, seed ^ 0xD317_A5ED);

        let mut full = protocol::build_sync_engine(&graph).unwrap();
        full.set_delta_encoding(false);
        let full_report = full.run_to_convergence();
        prop_assert!(full_report.converged);
        let full_outcome = protocol::outcome_from_nodes(&full.into_nodes()).unwrap();

        let mut delta = protocol::build_sync_engine(&graph).unwrap();
        let delta_report = delta.run_to_convergence();
        prop_assert!(delta_report.converged);
        let delta_outcome =
            protocol::outcome_from_nodes(&delta.into_nodes()).unwrap();

        prop_assert_eq!(delta_outcome, full_outcome);
        prop_assert_eq!(delta_report.stages, full_report.stages);
        prop_assert_eq!(delta_report.messages, full_report.messages);
        prop_assert_eq!(delta_report.entries, full_report.entries);
        prop_assert!(delta_report.bytes <= full_report.bytes);
        // No such inequality for bytes_v2: a v2 delta carries a fixed
        // 8-byte base-path hash, so on toy graphs with 2-hop paths and
        // 1-byte varints a delta can exceed the full ad it replaces. The
        // asymptotic win (paths of length Θ(d), hash cost amortized) is
        // what the E14 byte columns measure.
    }

    /// Topology dynamics: a cost perturbation after convergence drives
    /// exactly the price-relaxation traffic deltas compress; the
    /// reconverged fixpoints must still match.
    #[test]
    fn delta_stream_survives_cost_changes(
        family_idx in 0usize..Family::ALL.len(),
        n in 8usize..16,
        seed in 0u64..u64::MAX,
        node in 0u32..1000,
        cost in 0u64..50,
    ) {
        let family = Family::ALL[family_idx];
        let graph = family.build(n, seed ^ 0x00C0_57ED);
        let event =
            TopologyEvent::CostChange(AsId::new(node % n as u32), Cost::new(cost));

        let mut full = protocol::build_sync_engine(&graph).unwrap();
        full.set_delta_encoding(false);
        full.run_to_convergence();
        let full_report = full.apply_event(event);
        prop_assert!(full_report.converged);
        let full_outcome = protocol::outcome_from_nodes(&full.into_nodes()).unwrap();

        let mut delta = protocol::build_sync_engine(&graph).unwrap();
        delta.run_to_convergence();
        let delta_report = delta.apply_event(event);
        prop_assert!(delta_report.converged);
        let delta_outcome =
            protocol::outcome_from_nodes(&delta.into_nodes()).unwrap();

        prop_assert_eq!(delta_outcome, full_outcome);
        prop_assert_eq!(delta_report.stages, full_report.stages);
        prop_assert_eq!(delta_report.messages, full_report.messages);
        prop_assert_eq!(delta_report.entries, full_report.entries);
        prop_assert!(delta_report.bytes <= full_report.bytes);
    }

    /// Chaos parity with deltas disabled: the self-stabilization claim is
    /// independent of the encoding mode, so a delta-free chaos run must
    /// also land on the fault-free (delta-encoded) fixpoint.
    #[test]
    fn delta_free_chaos_matches_fault_free_fixpoint(
        family_idx in 0usize..Family::ALL.len(),
        n in 8usize..13,
        seed in 0u64..u64::MAX,
    ) {
        let family = Family::ALL[family_idx];
        let graph = family.build(n, seed ^ 0xDE17_AFE1);
        let reference = protocol::run_sync(&graph).unwrap().outcome;

        let mut engine =
            protocol::build_chaos_engine(&graph, FaultPlan::lossy(seed, 16)).unwrap();
        engine.set_delta_encoding(false);
        let report = engine.run_to_stable(MAX_STAGES);
        prop_assert!(report.converged, "did not quiesce: {report}");
        let outcome = protocol::outcome_from_nodes(&engine.into_nodes()).unwrap();
        prop_assert_eq!(outcome, reference);
    }
}
