//! Property sweeps for the Byzantine adversary layer and the online
//! auditor (see `docs/ROBUSTNESS.md`, Byzantine tier).
//!
//! Two contracts, each swept over `Family::ALL` × sizes × seeds × worker
//! counts:
//!
//! 1. **Zero false positives** — an honest audited run never draws an
//!    accusation, never quarantines, and extracts an outcome bit-identical
//!    to the unaudited run, for any worker count (the auditor observes the
//!    engine's canonical broadcast order, which is worker-invariant).
//! 2. **Quarantine-and-reconverge parity** — when the auditor quarantines
//!    a wire adversary, the post-recovery fixpoint is bit-identical to a
//!    run the adversary never joined (honest convergence followed by the
//!    same `NodeDown`), and serial vs. parallel adversarial runs agree on
//!    everything: accusations, quarantine set, and outcome.

use bgpvcg_bench::families::Family;
use bgpvcg_bgp::{Adversary, Strategy, TopologyEvent};
use bgpvcg_core::protocol;
use bgpvcg_netgraph::{AsGraph, AsId};
use proptest::prelude::*;

/// A node whose removal keeps the graph biconnected (so quarantine is a
/// valid recovery), or `None` when no node qualifies.
fn removable_node(g: &AsGraph) -> Option<AsId> {
    (0..g.node_count() as u32).map(AsId::new).find(|&k| {
        let mut engine = protocol::build_sync_engine(g).unwrap();
        engine.run_to_convergence();
        engine.try_apply_event(TopologyEvent::NodeDown(k)).is_ok()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Honest runs draw zero accusations across families, seeds, and
    /// worker counts 1–8, and auditing never perturbs the outcome.
    #[test]
    fn honest_runs_are_never_accused(
        family_idx in 0usize..Family::ALL.len(),
        n in 8usize..14,
        seed in 0u64..u64::MAX,
        workers in 1usize..9,
    ) {
        let family = Family::ALL[family_idx];
        let graph = family.build(n, seed ^ 0xAD5E_11A2);
        let reference = protocol::run_sync(&graph).unwrap();
        let mut engine = protocol::build_audited_sync_engine_parallel(&graph, workers).unwrap();
        let report = engine.run_to_convergence();
        prop_assert!(report.converged, "{}: {report:?}", family.name());
        prop_assert!(
            engine.accusations().is_empty(),
            "{} workers {workers}: honest run accused: {:?}",
            family.name(),
            engine.accusations()
        );
        prop_assert!(engine.quarantined().is_empty());
        let outcome = protocol::outcome_from_nodes(&engine.into_nodes()).unwrap();
        prop_assert_eq!(outcome, reference.outcome, "{} workers {workers}", family.name());
    }

    /// Quarantine recovery is exact and worker-invariant: a quarantined
    /// adversary leaves a fixpoint bit-identical to the run it never
    /// joined, and serial vs. parallel adversarial runs agree on the
    /// accusations, the quarantine set, and the outcome.
    #[test]
    fn quarantine_reconvergence_parity_serial_equals_parallel(
        family_idx in 0usize..Family::ALL.len(),
        n in 8usize..14,
        seed in 0u64..u64::MAX,
        strategy_idx in 0usize..Strategy::ALL.len(),
        workers in 2usize..9,
    ) {
        let family = Family::ALL[family_idx];
        let strategy = Strategy::ALL[strategy_idx];
        let graph = family.build(n, seed ^ 0x0B5E_55ED);
        let Some(culprit) = removable_node(&graph) else {
            // No quarantine is valid on this topology (e.g. the ring);
            // the e20 experiment covers the recorded-only path.
            return Ok(());
        };

        let run = |workers: usize| {
            let mut engine =
                protocol::build_audited_sync_engine_parallel(&graph, workers).unwrap();
            engine.set_adversary(culprit, Adversary::new(strategy, seed % 101));
            let report = engine.run_to_convergence();
            assert!(report.converged, "{}/{}", family.name(), strategy.name());
            let accusations = engine.accusations().to_vec();
            let quarantined = engine.quarantined().to_vec();
            let outcome = protocol::outcome_from_nodes(&engine.into_nodes()).unwrap();
            (accusations, quarantined, outcome)
        };
        let (accusations, quarantined, outcome) = run(1);
        let (par_accusations, par_quarantined, par_outcome) = run(workers);
        prop_assert_eq!(&accusations, &par_accusations, "workers {}", workers);
        prop_assert_eq!(&quarantined, &par_quarantined, "workers {}", workers);
        prop_assert_eq!(&outcome, &par_outcome, "workers {}", workers);

        if quarantined == [culprit] {
            // The adversary fired and was cut out: parity with the run it
            // never joined.
            let mut reference = protocol::build_sync_engine(&graph).unwrap();
            reference.run_to_convergence();
            reference
                .try_apply_event(TopologyEvent::NodeDown(culprit))
                .expect("culprit chosen removable");
            let reference = protocol::outcome_from_nodes(&reference.into_nodes()).unwrap();
            prop_assert_eq!(
                outcome,
                reference,
                "{}/{}: post-quarantine fixpoint must match the adversary-never-joined run",
                family.name(),
                strategy.name()
            );
        } else {
            // The tap never fired (idle adversary): the run must be
            // indistinguishable from honest.
            prop_assert!(quarantined.is_empty());
            prop_assert!(accusations.is_empty(), "{:?}", accusations);
            let honest = protocol::run_sync(&graph).unwrap();
            prop_assert_eq!(outcome, honest.outcome);
        }
    }
}
