//! Convergence health monitor properties over the benchmark families.
//!
//! The streaming SLO analyzer (`bgpvcg_telemetry::health`) must hold
//! three contracts under sweep pressure: honest converged runs raise
//! *zero* findings on every family, size, and seed (the monitor is a
//! zero-false-positive detector, like the online auditor); the verdict is
//! a pure function of the deterministic event stream, so serial and
//! parallel engines at any worker count produce byte-identical health
//! reports; and the mergeable quantile sketch the latency SLOs ride on is
//! order- and associativity-insensitive, so sweep-merged reports equal
//! single-pass ones.

use bgpvcg_bench::families::Family;
use bgpvcg_core::protocol;
use bgpvcg_telemetry::{HealthConfig, QuantileSketch};
use proptest::prelude::*;

/// Runs the pricing protocol on `graph` with the health monitor attached
/// and returns the monitor's full JSON report.
fn health_report(
    graph: &bgpvcg_netgraph::AsGraph,
    workers: usize,
) -> Result<String, TestCaseError> {
    let mut engine = if workers <= 1 {
        protocol::build_sync_engine(graph)
    } else {
        protocol::build_sync_engine_parallel(graph, workers)
    }
    .expect("benchmark families satisfy the mechanism preconditions");
    engine.attach_health(HealthConfig::default());
    prop_assert!(engine.run_to_convergence().converged);
    let sink = engine.health_sink().expect("health attached");
    let monitor = sink.snapshot();
    prop_assert!(
        monitor.findings().is_empty(),
        "honest run raised findings: {:?}",
        monitor.findings()
    );
    prop_assert!(!monitor.stalled());
    prop_assert!(monitor.stages_seen() > 0);
    prop_assert!(
        !monitor.latency().is_empty(),
        "a converged run must record convergence latencies"
    );
    Ok(monitor.to_json())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Honest converged runs are the SLO baseline: zero findings, no
    /// stall, non-empty per-destination latency sketches — on every
    /// family, size, and seed.
    #[test]
    fn honest_runs_raise_zero_findings(
        family_idx in 0usize..Family::ALL.len(),
        n in 8usize..14,
        seed in 0u64..u64::MAX,
    ) {
        let family = Family::ALL[family_idx];
        let graph = family.build(n, seed ^ 0xB10C_ED11);
        health_report(&graph, 1)?;
    }

    /// The health verdict is a function of the (deterministic) event
    /// stream, not of the execution strategy: the parallel engine's
    /// report is byte-identical to the serial one at every worker count.
    #[test]
    fn verdict_is_worker_count_invariant(
        family_idx in 0usize..Family::ALL.len(),
        n in 8usize..14,
        seed in 0u64..u64::MAX,
        workers in 2usize..9,
    ) {
        let family = Family::ALL[family_idx];
        let graph = family.build(n, seed ^ 0x9EA1_7447);
        let serial = health_report(&graph, 1)?;
        let parallel = health_report(&graph, workers)?;
        prop_assert_eq!(
            serial,
            parallel,
            "{} n={n} workers={workers}: health report depends on worker count",
            family.name()
        );
    }

    /// Sketch merging is associative and agrees with single-pass
    /// recording: however a sweep shards its observations, the merged
    /// sketch reports the same count, sum, max, and quantiles.
    #[test]
    fn sketch_merge_is_associative(
        values in proptest::collection::vec(0u64..1 << 48, 0..256),
        cut_a in 0usize..257,
        cut_b in 0usize..257,
    ) {
        let (cut_a, cut_b) = {
            let a = cut_a.min(values.len());
            let b = cut_b.min(values.len());
            (a.min(b), a.max(b))
        };
        let record = |slice: &[u64]| {
            let mut sketch = QuantileSketch::new();
            for &v in slice {
                sketch.record(v);
            }
            sketch
        };
        let (a, b, c) = (
            record(&values[..cut_a]),
            record(&values[cut_a..cut_b]),
            record(&values[cut_b..]),
        );

        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);
        // Single pass over everything.
        let single = record(&values);

        for sketch in [&left, &right] {
            prop_assert_eq!(sketch.count(), single.count());
            prop_assert_eq!(sketch.sum(), single.sum());
            prop_assert_eq!(sketch.max(), single.max());
            for permille in [0, 100, 500, 900, 990, 1000] {
                prop_assert_eq!(
                    sketch.quantile_permille(permille),
                    single.quantile_permille(permille),
                    "p{permille} diverges under merge"
                );
            }
        }
        prop_assert_eq!(left.to_json(), right.to_json());
        prop_assert_eq!(left.to_json(), single.to_json());
    }
}
