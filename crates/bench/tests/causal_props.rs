//! Causal provenance properties over the benchmark topology families.
//!
//! Every traced pricing run must rebuild into a well-formed convergence
//! DAG (`bgpvcg_telemetry::causal`): edges only point forward in the
//! monotone update-id order (hence acyclic), the roots are exactly the
//! stage-0 origin advertisements — one per AS, nothing else reaches back
//! to the environment — and the longest causal chain is bounded by the
//! stage count the engine itself reported. These properties sweep that
//! contract over `Family::ALL` × sizes × seeds.

use bgpvcg_bench::families::Family;
use bgpvcg_core::protocol;
use bgpvcg_telemetry::{CausalDag, Telemetry};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The convergence DAG of a traced pricing run is acyclic, rooted
    /// exactly at the stage-0 origin advertisements, and no causal chain
    /// is longer than the reported stage count.
    #[test]
    fn convergence_dag_is_acyclic_rooted_and_stage_bounded(
        family_idx in 0usize..Family::ALL.len(),
        n in 8usize..14,
        seed in 0u64..u64::MAX,
    ) {
        let family = Family::ALL[family_idx];
        let graph = family.build(n, seed ^ 0x5DEE_CE66);
        let (telemetry, ring) = Telemetry::ring(1 << 16);
        let run = protocol::run_sync_telemetry(&graph, &telemetry).unwrap();
        prop_assert!(run.report.converged, "{:?}", run.report);

        let dags = CausalDag::from_events(&ring.events());
        prop_assert_eq!(dags.len(), 1, "one run must yield one segment");
        let dag = &dags[0];
        if let Err(err) = dag.validate() {
            return Err(TestCaseError::fail(format!("{}: {err}", family.name())));
        }
        if let Err(err) = dag.validate_origin_roots() {
            return Err(TestCaseError::fail(format!("{}: {err}", family.name())));
        }

        // Roots are exactly the origin advertisements: one per AS, all at
        // stage 0 (validate_origin_roots pinned stage and uniqueness, so
        // the count alone closes the bijection).
        let roots = dag.roots();
        prop_assert_eq!(
            roots.len(),
            graph.node_count(),
            "{}: every AS contributes exactly one origin root",
            family.name()
        );

        // The critical path (max_depth edges, so max_depth + 1 vertices)
        // cannot outrun the engine's own stage count: each causal hop
        // crosses at least one stage boundary.
        let stages = dag.reported_stages().expect("segment closed by Quiescent");
        let path = dag.critical_path();
        prop_assert!(!path.is_empty(), "a converged run has at least a root");
        prop_assert!(
            path.len() as u64 <= stages + 1,
            "{}: critical path of {} update(s) exceeds {} reported stage(s)",
            family.name(),
            path.len(),
            stages
        );
    }
}
