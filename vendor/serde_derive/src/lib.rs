//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The workspace only *derives* these traits (no serialization is ever
//! performed — there is no serde_json in the tree), and the vendored
//! `serde` crate blanket-implements both traits for every type. The
//! derives therefore expand to nothing; they exist so `#[derive(Serialize,
//! Deserialize)]` and `#[serde(...)]` helper attributes keep compiling
//! unchanged against the real crate's surface.

use proc_macro::TokenStream;

/// Expands to nothing; the vendored `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the vendored `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
