//! Offline stand-in for `criterion`: compiles the workspace benches
//! unchanged and runs each benchmark as a short timed smoke run (median of
//! a few batches, printed to stdout) instead of a full statistical
//! analysis. Good enough to catch perf regressions by eye and to keep
//! `cargo bench` meaningful while the registry is unreachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f`: one warmup call, then batches until ~20ms of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let mut batch: u64 = 1;
        let mut samples: Vec<f64> = Vec::new();
        let budget = Instant::now();
        while budget.elapsed() < Duration::from_millis(20) && samples.len() < 64 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            samples.push(elapsed / batch as f64);
            if elapsed < 1_000_000.0 {
                batch = batch.saturating_mul(2);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.nanos_per_iter = samples[samples.len() / 2];
    }
}

fn report(group: &str, label: &str, throughput: Option<Throughput>, nanos: f64) {
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if nanos > 0.0 => {
            format!("  {:.1} MiB/s", b as f64 / nanos * 1e9 / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) if nanos > 0.0 => {
            format!("  {:.1} Melem/s", e as f64 / nanos * 1e9 / 1e6)
        }
        _ => String::new(),
    };
    if nanos >= 1e6 {
        println!("bench {group}/{label}: {:.3} ms/iter{rate}", nanos / 1e6);
    } else if nanos >= 1e3 {
        println!("bench {group}/{label}: {:.3} us/iter{rate}", nanos / 1e3);
    } else {
        println!("bench {group}/{label}: {nanos:.1} ns/iter{rate}");
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the smoke runner self-limits.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the smoke runner self-limits.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Declares throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark that closes over its input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(
            &self.name,
            &id.label,
            self.throughput,
            bencher.nanos_per_iter,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(
            &self.name,
            &id.label,
            self.throughput,
            bencher.nanos_per_iter,
        );
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
