//! Offline stand-in for `proptest`, implementing the subset this workspace
//! uses: the `proptest!` macro, range/tuple/`Just`/`prop_map`/`prop_oneof`
//! strategies, `collection::vec`, `any::<T>()`, the `prop_assert*` family,
//! and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports its deterministic attempt
//!   index (re-runnable, since the RNG is seeded from the test name and
//!   attempt number) instead of a minimized input.
//! - **No persistence.** `.proptest-regressions` files are ignored.
//! - Generation runs on the vendored xoshiro `StdRng`, so the sampled
//!   inputs differ from upstream proptest for the same seed.
//! - `PROPTEST_CASES` **caps** every suite's case count (upstream only
//!   reseats the default): the nightly Miri/TSan CI jobs rely on this to
//!   cut suites that pin their own counts down to interpreter speed.

pub mod test_runner {
    //! Case configuration, error vocabulary, and the deterministic RNG.

    /// Deterministic per-case generator (the vendored xoshiro `StdRng`).
    pub type TestRng = rand::rngs::StdRng;

    /// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases each property must pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` accepted cases per property. The
        /// `PROPTEST_CASES` environment variable, when set to a number,
        /// acts as a *cap* on any requested count — slightly stronger
        /// than upstream (where it only reseats the default), so that
        /// interpreter/sanitizer CI runs can cut every suite down even
        /// when a test pins its own case count.
        pub fn with_cases(cases: u32) -> Self {
            let capped = match std::env::var("PROPTEST_CASES") {
                Ok(v) => match v.parse::<u32>() {
                    Ok(cap) => cases.min(cap.max(1)),
                    Err(_) => cases,
                },
                Err(_) => cases,
            };
            Config { cases: capped }
        }

        /// Upper bound on generation attempts before the runner gives up
        /// (rejections via `prop_assume!` do not count as accepted cases).
        pub fn max_attempts(&self) -> u32 {
            self.cases.saturating_mul(20).max(1024)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config::with_cases(64)
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property failed; the runner panics with this message.
        Fail(String),
        /// `prop_assume!` filtered the input; the case is re-drawn.
        Reject,
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// The RNG for one attempt of one property: FNV-1a of the test path,
    /// perturbed by the attempt index. Fully deterministic across runs.
    pub fn case_rng(test_path: &str, attempt: u32) -> TestRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ (u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Arc<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: rand::distributions::uniform::SampleUniform,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Weighted choice among boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Arc<dyn Strategy<Value = T>>)>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Builds the union; total weight must be positive.
        pub fn new_weighted(arms: Vec<(u32, Arc<dyn Strategy<Value = T>>)>) -> Self {
            assert!(
                arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
                "prop_oneof! needs positive total weight"
            );
            Union { arms }
        }

        /// Type-erases one arm (helper for the `prop_oneof!` expansion).
        pub fn arc(strategy: impl Strategy<Value = T> + 'static) -> Arc<dyn Strategy<Value = T>> {
            Arc::new(strategy)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.gen_range(0..total);
            for (w, strat) in &self.arms {
                if pick < u64::from(*w) {
                    return strat.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights sum checked at construction")
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Full-domain strategy for an [`Arbitrary`] type.
    #[derive(Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `A`'s full domain.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and length in a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `len` (half-open).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range for collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Rejects the current case (re-drawn, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Weighted (or uniform) choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((($weight) as u32, $crate::strategy::Union::arc($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the real crate's surface syntax: an optional leading
/// `#![proptest_config(expr)]`, then any number of
/// `fn name(pat in strategy, ...) { body }` items (doc comments and extra
/// attributes allowed). Bodies may use `prop_assert*!` / `prop_assume!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    (@items ($cfg:expr)) => {};
    (@items ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __pt_config: $crate::test_runner::Config = $cfg;
            let __pt_max = __pt_config.max_attempts();
            let mut __pt_accepted: u32 = 0;
            let mut __pt_attempt: u32 = 0;
            while __pt_accepted < __pt_config.cases {
                assert!(
                    __pt_attempt < __pt_max,
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                let mut __pt_rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __pt_attempt,
                );
                __pt_attempt += 1;
                let __pt_result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __pt_result {
                    ::std::result::Result::Ok(()) => __pt_accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} failed at attempt {}: {}",
                            stringify!($name),
                            __pt_attempt - 1,
                            msg,
                        );
                    }
                }
            }
        }
        $crate::proptest!(@items ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Ranges honor their bounds.
        fn range_bounds(v in 10u64..20) {
            prop_assert!((10..20).contains(&v));
        }

        /// Assume rejects without failing the run.
        fn assume_filters(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        /// Tuples, maps, oneof, and vec compose.
        fn combinators(
            pair in (0u8..10, 0u8..10),
            tagged in prop_oneof![3 => Just(0u8), 1 => (1u8..4).prop_map(|x| x)],
            items in prop::collection::vec(any::<u8>(), 0..5),
        ) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert!(tagged < 4);
            prop_assert!(items.len() < 5);
        }
    }

    #[test]
    fn deterministic_rng() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::case_rng("x", 3);
        let mut b = crate::test_runner::case_rng("x", 3);
        assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
    }
}
