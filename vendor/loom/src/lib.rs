//! Offline stand-in for `loom`: an exhaustive-interleaving model checker.
//!
//! The real loom instruments `std::sync` primitives and replays a program
//! under every legal memory-model exploration. This stand-in keeps the part
//! the workspace needs — *exhaustive schedule exploration* — and drops the
//! C11 memory-model machinery: model threads run as real OS threads, but a
//! cooperative scheduler admits exactly one at a time, and every admission
//! is a recorded decision. [`model`] (and the counting variant [`explore`])
//! re-runs the closure under depth-first search over those decisions until
//! every schedule has been executed once.
//!
//! Scheduling points are explicit: [`thread::spawn`] registers a thread,
//! [`thread::yield_now`] yields, [`JoinHandle::join`] blocks, and the
//! [`channel`] operations (`send` / `try_recv`) yield before touching the
//! queue. Between two scheduling points a thread runs atomically, so the
//! set of explored behaviors is every interleaving of those atomic
//! segments — for two threads with `a` and `b` observable segments, all
//! `C(a + b, a)` arrival orders are visited.
//!
//! [`channel`] mirrors the `vendor/crossbeam` surface the sync engine's
//! worker pool uses (`unbounded()`, cloneable `Sender::send`,
//! `Receiver::try_recv`), so the pool's shard/merge protocol can be
//! restated under the model with the same code shape. Divergences from
//! real loom/crossbeam, by design: channels never report disconnection
//! (drain after joining, as the engine does), and there is no blocking
//! `recv` — the engine never blocks on the collector either.
//!
//! [`JoinHandle::join`]: thread::JoinHandle::join

#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Backstop against schedule-space blowups: `explore` panics rather than
/// silently truncating if a model needs more executions than this.
const MAX_EXECUTIONS: usize = 1_000_000;

/// What a model thread is currently able to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    /// May be picked by the scheduler.
    Runnable,
    /// Waiting for the given thread id to finish (a `join`).
    Blocked(usize),
    /// Exited.
    Finished,
}

/// One scheduler decision: which runnable thread was admitted, out of which
/// candidates. DFS backtracks over `chosen` (an index into `enabled`).
#[derive(Debug)]
struct Decision {
    chosen: usize,
    enabled: Vec<usize>,
}

#[derive(Debug)]
struct State {
    /// Thread id currently admitted to run.
    current: usize,
    threads: Vec<Run>,
    /// Forced decision prefix replayed from the previous execution.
    prefix: Vec<usize>,
    /// Decisions taken this execution (replayed prefix included).
    decisions: Vec<Decision>,
    pos: usize,
    /// Set when any model thread panics; waiters abort instead of hanging.
    panicked: bool,
}

#[derive(Debug)]
struct Execution {
    state: Mutex<State>,
    cv: Condvar,
}

impl Execution {
    fn new(prefix: Vec<usize>) -> Execution {
        Execution {
            state: Mutex::new(State {
                current: 0,
                threads: vec![Run::Runnable],
                prefix,
                decisions: Vec::new(),
                pos: 0,
                panicked: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn enabled(threads: &[Run]) -> Vec<usize> {
        threads
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Run::Runnable))
            .map(|(i, _)| i)
            .collect()
    }

    /// Admits the next thread (lock held). Replays the DFS prefix while it
    /// lasts, then defaults to the lowest-id candidate; either way the
    /// decision and its alternatives are recorded for backtracking.
    fn pick_locked(&self, state: &mut State) {
        let enabled = Self::enabled(&state.threads);
        if enabled.is_empty() {
            if state.threads.iter().all(|r| matches!(r, Run::Finished)) {
                self.cv.notify_all();
                return;
            }
            state.panicked = true;
            self.cv.notify_all();
            panic!("loom model deadlock: threads blocked but none runnable");
        }
        let chosen = if state.pos < state.prefix.len() {
            state.prefix[state.pos]
        } else {
            0
        };
        state.pos += 1;
        state.current = enabled[chosen];
        state.decisions.push(Decision { chosen, enabled });
        self.cv.notify_all();
    }

    fn wait_for_turn(&self, me: usize) {
        let mut state = self.state.lock().expect("model state lock");
        while state.current != me {
            if state.panicked {
                panic!("loom model aborted: a model thread panicked");
            }
            state = self.cv.wait(state).expect("model state lock");
        }
    }

    /// A preemption point: hand the scheduler a decision, then wait until
    /// it admits `me` again (possibly immediately — self is a candidate).
    fn sched_point(&self, me: usize) {
        {
            let mut state = self.state.lock().expect("model state lock");
            self.pick_locked(&mut state);
        }
        self.wait_for_turn(me);
    }
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<Execution>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitive used outside loom::model")
    })
}

/// Runs `f` under every schedule. Panics (assertion failures included)
/// propagate to the caller on the first failing schedule.
pub fn model<F>(f: F)
where
    F: Fn(),
{
    explore(f);
}

/// Like [`model`], but returns how many distinct schedules were executed.
pub fn explore<F>(f: F) -> usize
where
    F: Fn(),
{
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= MAX_EXECUTIONS,
            "loom model exceeded {MAX_EXECUTIONS} schedules; shrink the model"
        );
        let exec = Arc::new(Execution::new(prefix.clone()));
        CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), 0)));
        let outcome = catch_unwind(AssertUnwindSafe(&f));
        CTX.with(|c| *c.borrow_mut() = None);
        finish_main(&exec, outcome.is_err());
        if let Err(payload) = outcome {
            resume_unwind(payload);
        }
        wait_all_finished(&exec);
        match next_prefix(&exec) {
            Some(next) => prefix = next,
            None => return executions,
        }
    }
}

/// Marks the root thread finished and schedules any straggler threads the
/// closure spawned but never joined, so every execution drains fully.
fn finish_main(exec: &Execution, aborting: bool) {
    let mut state = exec.state.lock().expect("model state lock");
    state.threads[0] = Run::Finished;
    if aborting {
        state.panicked = true;
        exec.cv.notify_all();
        return;
    }
    exec.pick_locked(&mut state);
}

fn wait_all_finished(exec: &Execution) {
    let mut state = exec.state.lock().expect("model state lock");
    while !state.threads.iter().all(|r| matches!(r, Run::Finished)) {
        state = exec.cv.wait(state).expect("model state lock");
    }
}

/// DFS backtrack: flip the deepest decision that still has an untried
/// alternative; `None` when the whole schedule tree is exhausted.
fn next_prefix(exec: &Execution) -> Option<Vec<usize>> {
    let state = exec.state.lock().expect("model state lock");
    let decisions = &state.decisions;
    let flip = decisions
        .iter()
        .rposition(|d| d.chosen + 1 < d.enabled.len())?;
    let mut prefix: Vec<usize> = decisions[..flip].iter().map(|d| d.chosen).collect();
    prefix.push(decisions[flip].chosen + 1);
    Some(prefix)
}

pub mod thread {
    //! Model threads: real OS threads admitted one at a time.

    use super::{ctx, Arc, AssertUnwindSafe, Mutex, Run};

    /// Handle to a model thread; [`join`](JoinHandle::join) is a blocking
    /// scheduling point, as in `std`.
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        id: usize,
        result: Arc<Mutex<Option<T>>>,
    }

    /// Spawns a model thread. Registration is atomic with the caller's
    /// current segment: the child only runs once a scheduling point admits
    /// it.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, _me) = ctx();
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let id = {
            let mut state = exec.state.lock().expect("model state lock");
            state.threads.push(Run::Runnable);
            state.threads.len() - 1
        };
        let child_exec = Arc::clone(&exec);
        let slot = Arc::clone(&result);
        std::thread::spawn(move || {
            super::CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&child_exec), id)));
            child_exec.wait_for_turn(id);
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(f));
            let mut state = child_exec.state.lock().expect("model state lock");
            state.threads[id] = Run::Finished;
            for r in state.threads.iter_mut() {
                if *r == Run::Blocked(id) {
                    *r = Run::Runnable;
                }
            }
            match outcome {
                Ok(value) => {
                    *slot.lock().expect("result slot lock") = Some(value);
                    child_exec.pick_locked(&mut state);
                }
                Err(_) => {
                    state.panicked = true;
                    child_exec.cv.notify_all();
                }
            }
        });
        JoinHandle { id, result }
    }

    impl<T> JoinHandle<T> {
        /// Blocks the calling model thread until the child exits.
        ///
        /// # Errors
        ///
        /// Never returns `Err` — a panicking child aborts the whole model —
        /// but keeps `std`'s `Result` shape so call sites match real code.
        pub fn join(self) -> std::thread::Result<T> {
            let (exec, me) = ctx();
            loop {
                let mut state = exec.state.lock().expect("model state lock");
                if state.threads[self.id] == Run::Finished {
                    break;
                }
                state.threads[me] = Run::Blocked(self.id);
                exec.pick_locked(&mut state);
                drop(state);
                exec.wait_for_turn(me);
            }
            Ok(self
                .result
                .lock()
                .expect("result slot lock")
                .take()
                .expect("joined model thread left a result"))
        }
    }

    /// Explicit preemption point.
    pub fn yield_now() {
        let (exec, me) = ctx();
        exec.sched_point(me);
    }
}

pub mod channel {
    //! Model twin of the `vendor/crossbeam` channel subset: every queue
    //! operation is a scheduling point, so message arrival order is
    //! explored exhaustively.

    use super::{ctx, Arc, Mutex};
    use std::collections::VecDeque;

    pub use std::sync::mpsc::{SendError, TryRecvError};

    #[derive(Debug)]
    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
    }

    /// Cloneable sending half.
    #[derive(Debug)]
    pub struct Sender<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Sender<T> {
        /// Yields to the scheduler, then enqueues `value` atomically.
        ///
        /// # Errors
        ///
        /// Never errors — model channels do not track disconnection.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let (exec, me) = ctx();
            exec.sched_point(me);
            self.0.queue.lock().expect("channel lock").push_back(value);
            Ok(())
        }
    }

    /// Receiving half (single consumer by convention, as in the engine).
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> Receiver<T> {
        /// Yields to the scheduler, then pops the head if present.
        ///
        /// # Errors
        ///
        /// `TryRecvError::Empty` when the queue is empty; model channels
        /// never report `Disconnected`.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let (exec, me) = ctx();
            exec.sched_point(me);
            self.0
                .queue
                .lock()
                .expect("channel lock")
                .pop_front()
                .ok_or(TryRecvError::Empty)
        }
    }

    /// Creates an unbounded FIFO model channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn straight_line_code_runs_exactly_once() {
        let runs = explore(|| {
            let x = 1 + 1;
            assert_eq!(x, 2);
        });
        assert_eq!(runs, 1);
    }

    #[test]
    fn two_yielding_threads_cover_every_append_order() {
        let orders: Arc<Mutex<BTreeSet<Vec<u8>>>> = Arc::new(Mutex::new(BTreeSet::new()));
        let observed = Arc::clone(&orders);
        model(move || {
            let log: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
            let handles: Vec<_> = [b'a', b'b']
                .into_iter()
                .map(|tag| {
                    let log = Arc::clone(&log);
                    thread::spawn(move || {
                        for _ in 0..2 {
                            thread::yield_now();
                            log.lock().expect("log lock").push(tag);
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("model thread");
            }
            let order = log.lock().expect("log lock").clone();
            observed.lock().expect("orders lock").insert(order);
        });
        // Two ordered pairs interleave in C(4, 2) = 6 ways; exhaustive
        // search must witness every one of them.
        let orders = orders.lock().expect("orders lock");
        assert_eq!(orders.len(), 6);
        for order in orders.iter() {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, b"aabb");
        }
    }

    #[test]
    fn channel_preserves_per_sender_fifo_under_all_schedules() {
        model(|| {
            let (tx, rx) = channel::unbounded();
            let tx2 = tx.clone();
            let a = thread::spawn(move || {
                tx.send((0u8, 0u8)).expect("model send");
                tx.send((0, 1)).expect("model send");
            });
            let b = thread::spawn(move || {
                tx2.send((1u8, 0u8)).expect("model send");
                tx2.send((1, 1)).expect("model send");
            });
            a.join().expect("model thread");
            b.join().expect("model thread");
            let mut last = [None::<u8>, None::<u8>];
            while let Ok((sender, seq)) = rx.try_recv() {
                let slot = &mut last[sender as usize];
                assert!(*slot < Some(seq), "per-sender FIFO violated");
                *slot = Some(seq);
            }
            assert_eq!(last, [Some(1), Some(1)]);
        });
    }

    #[test]
    #[should_panic(expected = "witnessed")]
    fn failing_schedules_propagate_as_panics() {
        model(|| {
            let (tx, rx) = channel::unbounded();
            let handle = thread::spawn(move || tx.send(7u8).expect("model send"));
            // Whether the message is visible here depends on the schedule;
            // exhaustive search must find the schedule where it is.
            if rx.try_recv() == Ok(7) {
                panic!("witnessed the early-delivery schedule");
            }
            handle.join().expect("model thread");
        });
    }
}
