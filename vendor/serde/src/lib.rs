//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its wire and outcome
//! types for downstream consumers but performs no (de)serialization inside
//! the tree, so this stand-in reduces the traits to blanket-implemented
//! markers and the derives (see `serde_derive`) to no-ops. Swapping the
//! real serde back in is a one-line change in the workspace manifest.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
