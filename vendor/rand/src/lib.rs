//! Offline stand-in for the `rand` crate, exposing exactly the API subset
//! this workspace uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`distributions::Uniform`].
//!
//! The registry is unreachable in the build environment, so the workspace
//! vendors a std-only implementation. `StdRng` here is xoshiro256++ seeded
//! through SplitMix64 — statistically strong and deterministic per seed,
//! but **not** the ChaCha stream of the real `rand::rngs::StdRng`, so
//! fixed-seed sequences differ from upstream.

/// A source of random `u64` words. Mirror of `rand_core::RngCore`, reduced
/// to the one method everything else derives from.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `state`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples a value from the type's standard distribution (the
    /// `Standard` distribution of real rand: unit interval for floats,
    /// full domain for integers and `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

/// Types drawable via [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from the standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (Blackman–Vigna), seeded via SplitMix64.
    ///
    /// Drop-in for `rand::rngs::StdRng` in this workspace: deterministic
    /// per seed, passes the usual statistical batteries, std-only.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Sampling distributions (the `Uniform` subset).

    use super::RngCore;

    /// Types that `Distribution::sample` can produce.
    pub trait Distribution<T> {
        /// Draws one value using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a closed or half-open interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T: uniform::SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: false,
            }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            Uniform {
                lo,
                hi,
                inclusive: true,
            }
        }
    }

    impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            if self.inclusive {
                T::sample_inclusive(rng, self.lo, self.hi)
            } else {
                T::sample_exclusive(rng, self.lo, self.hi)
            }
        }
    }

    pub mod uniform {
        //! The sampling traits backing `gen_range` and `Uniform`.

        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Primitive types that support uniform interval sampling.
        pub trait SampleUniform: Copy + PartialOrd {
            /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
            /// Uniform draw from `[lo, hi]`. Panics if `hi < lo`.
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        }

        /// Range shapes accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_exclusive(rng, self.start, self.end)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_inclusive(rng, *self.start(), *self.end())
            }
        }

        macro_rules! impl_uniform_uint {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        assert!(lo < hi, "empty gen_range");
                        let span = (hi as u128) - (lo as u128);
                        lo + ((rng.next_u64() as u128 % span) as $t)
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        assert!(lo <= hi, "empty gen_range");
                        let span = (hi as u128) - (lo as u128) + 1;
                        lo + ((rng.next_u64() as u128 % span) as $t)
                    }
                }
            )*};
        }
        impl_uniform_uint!(u8, u16, u32, u64, usize);

        macro_rules! impl_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        assert!(lo < hi, "empty gen_range");
                        let span = (hi as i128 - lo as i128) as u128;
                        (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        assert!(lo <= hi, "empty gen_range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                    }
                }
            )*};
        }
        impl_uniform_int!(i8, i16, i32, i64, isize);

        macro_rules! impl_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        assert!(lo < hi, "empty gen_range");
                        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                        lo + (unit as $t) * (hi - lo)
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                        assert!(lo <= hi, "empty gen_range");
                        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) - 1) as f64);
                        lo + (unit as $t) * (hi - lo)
                    }
                }
            )*};
        }
        impl_uniform_float!(f32, f64);
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_word(), b.next_word());
        }
    }

    impl StdRng {
        fn next_word(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn uniform_inclusive_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Uniform::new_inclusive(0u64, 1);
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[d.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
