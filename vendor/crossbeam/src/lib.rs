//! Offline stand-in for `crossbeam`, covering the `channel` subset the
//! event-driven engine uses: `unbounded()`, cloneable senders, and
//! `recv`/`recv_timeout` with crossbeam's error vocabulary.
//!
//! Backed by `std::sync::mpsc`, which matches the engine's usage exactly:
//! one receiver per worker thread (never cloned or shared) and many
//! cloned senders. Unlike real crossbeam, `Receiver` here is not `Sync`
//! and cannot be cloned — the engine does neither.

pub mod channel {
    //! MPSC channels with crossbeam's surface, mapped onto `std::sync::mpsc`.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Cloneable sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; errors only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel (single consumer).
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_from_cloned_senders() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx.send(1u32).expect("receiver alive"));
            std::thread::spawn(move || tx2.send(2u32).expect("receiver alive"));
            let mut got = vec![rx.recv().expect("sent"), rx.recv().expect("sent")];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        }

        #[test]
        fn timeout_then_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
